(** The tree-fanout experiment: flat star versus 2-tier k-ary tree at
    growing consumer counts.

    For each consumer count [n], a synthetic enterprise directory is
    built, [n] leaves subscribe to department filters (round-robin over
    a small distinct-filter set), an update burst is applied at the
    root, and the topology is synchronized to convergence.  Per point
    the sweep records root-master session count, Ber bytes on the
    links into the root (initial build and update phases separately),
    total upstream bytes across all links, and the number of poll
    rounds to convergence.

    Expected shape: in the tree, root sessions and root-link bytes are
    flat in [n] (only the interior nodes talk to the root) while the
    star grows both linearly; the tree pays one extra convergence
    round per tier. *)

type point = {
  shape : string;  (** ["star"] or ["tree<arity>"]. *)
  consumers : int;
  root_sessions : int;  (** Live sessions at the root master. *)
  build_root_bytes : int;  (** Root-link Ber bytes of the initial fetches. *)
  update_root_bytes : int;  (** Root-link Ber bytes of the update phase. *)
  update_total_bytes : int;  (** Update-phase Ber bytes over every link. *)
  convergence_rounds : int;
      (** Poll rounds until every leaf matched the root ([-1]: did not
          converge within the cap). *)
}

type config = {
  consumers_list : int list;
  filters : int;  (** Distinct leaf filters (and interior covers). *)
  arity : int;  (** Interior nodes of the tree shape. *)
  updates : int;  (** Update burst length between build and measure. *)
  employees : int;
  seed : int;
}

val default_config : config
(** 100–1000 consumers, 20 filters, arity 4, 200 updates. *)

val smoke_config : config
(** CI-sized: 24 and 48 consumers, 8 filters, arity 2, 60 updates. *)

val tree_fanout : ?config:config -> unit -> point list
(** Runs star and tree at every consumer count, star first. *)

val json_of_points : point list -> string
(** A JSON array (indented for embedding as a [BENCH_PR3.json]
    field). *)

(** Parameters of the latency/staleness sweep. *)
type lat_config = {
  lat_consumers : int;  (** Leaves per topology. *)
  lat_filters : int;  (** Distinct leaf filters (and interior covers). *)
  lat_arity : int;  (** Interior nodes of the tree variant. *)
  lat_employees : int;  (** Directory size. *)
  lat_seed : int;  (** Seeds directory, updates, faults and engine. *)
  lat_poll_every : int;  (** Virtual ticks between a participant's polls. *)
  lat_update_every : int;  (** Virtual ticks between committed updates. *)
  lat_updates : int;  (** Updates committed during the run. *)
  lat_link_lo : int;  (** Uniform per-link latency lower bound (ticks). *)
  lat_link_hi : int;  (** Uniform per-link latency upper bound (ticks). *)
  lat_drop_rate : float;
      (** Total loss probability of the lossy variants, split evenly
          between dropped requests and dropped replies. *)
  lat_horizon : int;  (** Virtual time when poll loops stop rescheduling. *)
}

val lat_default_config : lat_config
(** 48 consumers, 8 filters, arity 4, uniform 2–8 tick links, 20%
    loss, horizon 1600. *)

val lat_smoke_config : lat_config
(** CI-sized: 12 consumers, 4 filters, arity 2, horizon 700. *)

(** One measured topology/fault variant of the latency sweep. *)
type lat_point = {
  lp_shape : string;  (** ["star"] or ["tree<arity>"]. *)
  lp_faults : string;  (** ["clean"] or ["lossy"]. *)
  lp_polls : int;  (** Completed leaf polls (response-time samples). *)
  lp_resp_p50 : int;  (** Median leaf poll response time, virtual ticks. *)
  lp_resp_p90 : int;  (** 90th-percentile response time. *)
  lp_resp_p99 : int;  (** 99th-percentile response time. *)
  lp_resp_max : int;  (** Worst observed response time. *)
  lp_stale_samples : int;  (** Matched (update, leaf) staleness samples. *)
  lp_stale_censored : int;
      (** (update, leaf) pairs never covered within the horizon. *)
  lp_stale_mean : int;  (** Mean staleness, rounded to a tick. *)
  lp_stale_p50 : int;  (** Median staleness. *)
  lp_stale_p90 : int;  (** 90th-percentile staleness. *)
  lp_stale_p99 : int;  (** 99th-percentile staleness. *)
  lp_stale_max : int;  (** Worst observed staleness. *)
}

val latency_staleness : ?config:lat_config -> unit -> lat_point list
(** The event-driven sweep: star and tree topologies, each clean and
    lossy, over identical seeds.  Per variant the topology is built
    synchronously (no virtual time), then a discrete-event engine is
    attached, updates are committed on a periodic schedule and every
    participant polls on its own staggered loop; each completed leaf
    poll samples its response time, and staleness is the virtual time
    from an update's commit until a leaf first acknowledged a CSN at or
    past it.  Expected ordering: tree staleness ≥ star (one extra tier
    of polling), lossy response time ≥ clean (retry backoff burns
    virtual time). *)

val json_of_lat_points : lat_point list -> string
(** A JSON array (indented for embedding as the [BENCH_PR4.json]
    [points] field). *)

(** Parameters of the crash/restart sweep. *)
type cr_config = {
  cr_consumers : int;  (** Leaves in the star topology. *)
  cr_filters : int;  (** Distinct leaf filters. *)
  cr_employees : int;  (** Directory size. *)
  cr_seed : int;  (** Seeds directory, updates, faults and engine. *)
  cr_poll_every : int;  (** Virtual ticks between a leaf's polls. *)
  cr_update_every : int;  (** Virtual ticks between committed updates. *)
  cr_updates_before : int;  (** Updates committed before the crash. *)
  cr_updates_after : int;  (** Updates committed while the leaves are down. *)
  cr_crash_fraction : float;  (** Fraction of leaves crashed (at least one). *)
  cr_horizon : int;  (** Virtual time when poll loops stop rescheduling. *)
  cr_corruptions : int;  (** Trials of the randomized corruption sweep. *)
}

val cr_default_config : cr_config
(** 24 leaves, 12 filters, a quarter crashed, 20+40 updates. *)

val cr_smoke_config : cr_config
(** CI-sized: 8 leaves, 3 filters, 6+6 updates, 12 corruption trials. *)

(** One recovery mode of the crash/restart sweep. *)
type cr_point = {
  cp_mode : string;
      (** ["durable"] (fsynced journal, clean recovery),
          ["durable-torn"] (unsynced journal torn by the crash),
          ["cold"] (no durable state, full re-fetch) or ["reparent"]
          (no death: PR 3's cookie-translation heal as baseline). *)
  cp_affected : int;  (** Leaves crashed (or reparented). *)
  cp_resync_bytes : int;
      (** Ber bytes the affected leaves paid upstream from recovery
          start to the horizon — the headline comparison: durable
          resume must undercut cold re-fetch. *)
  cp_replayed : int;  (** WAL records replayed across all recoveries. *)
  cp_truncated : int;  (** Per-filter stores whose WAL tail was cut. *)
  cp_recover_ticks_mean : int;
      (** Mean virtual time from recovery start until an affected
          leaf's content matched the root again. *)
  cp_recover_ticks_max : int;  (** Worst leaf recovery time. *)
  cp_converged : int;  (** Affected leaves converged by the horizon. *)
}

val crash_restart : ?config:cr_config -> unit -> cr_point list
(** Runs all four modes over identical seeds: a star is built, a
    fraction of its leaves crash after the first update batch, more
    updates are committed while they are down, and they restart (or
    are reparented) once the updates stop.  Durable modes recover
    from per-leaf media and resume ReSync from the durable cookie;
    cold mode re-subscribes with full fetches. *)

val json_of_cr_points : cr_point list -> string
(** A JSON array (indented for embedding as the [BENCH_PR5.json]
    [points] field). *)

(** Outcome of the randomized WAL-corruption sweep. *)
type corruption_summary = {
  cs_trials : int;
  cs_recovered : int;  (** Recoveries that returned a consumer. *)
  cs_truncated : int;  (** Recoveries that cut a torn/corrupt tail. *)
  cs_discarded : int;  (** Recoveries that discarded a stale-generation log. *)
  cs_repaired_merkle : int;  (** Damaged recoveries repaired by Merkle walk. *)
  cs_repaired_cold : int;  (** Damaged recoveries repaired by cold re-fetch. *)
  cs_stale : int;
      (** Trials whose content still diverged from the master after the
          recovery completed — forced repair for damaged recoveries, a
          resume poll for clean ones.  Gated to 0: no corruption may
          leave a replica serving stale reads. *)
  cs_panics : int;  (** Recoveries that raised — must be 0. *)
}

val corruption_sweep : ?config:cr_config -> unit -> corruption_summary
(** Journals a reference consumer store, then recovers from
    [cr_corruptions] randomly mutilated copies (truncation at an
    arbitrary byte, single-byte flips in WAL and occasionally
    snapshot).  Every trial must recover or fail cleanly — a raise is
    counted as a panic — and must end with content matching the
    master: damaged recoveries are repaired in place (Merkle walk,
    cold fallback), clean ones resume from their durable cookie with
    one poll.  Divergence after that counts as stale; panics and
    stales both fail the acceptance gate. *)

val json_of_corruption : corruption_summary -> string
(** A JSON object for the [BENCH_PR5.json] [corruption] field. *)

(** Parameters of the anti-entropy drift sweep. *)
type ae_config = {
  ae_consumers : int;  (** Leaves in the star topology. *)
  ae_employees : int;  (** Directory size. *)
  ae_seed : int;  (** Seeds directory, updates and engine. *)
  ae_poll_every : int;  (** Virtual ticks between a leaf's polls. *)
  ae_crash_fraction : float;  (** Fraction of leaves crashed (at least one). *)
  ae_drifts : float list;
      (** Drift fractions swept: each downed replica misses
          [round (drift * employees)] updates. *)
  ae_horizon : int;  (** Virtual time when poll loops stop rescheduling. *)
}

val ae_default_config : ae_config
(** 16 division replicas, a quarter crashed, drifts 0–50%. *)

val ae_smoke_config : ae_config
(** CI-sized: 8 replicas, drifts 0/10/50%. *)

(** One drift fraction of the anti-entropy sweep: the same scenario
    restarted in [Merkle] and in [Cold] mode. *)
type ae_point = {
  ap_drift : float;
  ap_updates : int;  (** Updates the downed replicas missed. *)
  ap_affected : int;  (** Replicas crashed and restarted. *)
  ap_merkle_bytes : int;
      (** Ber bytes the affected replicas paid to rejoin by Merkle
          walk — hash exchanges plus drifted-segment shipping. *)
  ap_cold_bytes : int;  (** Same replicas rejoining by full re-fetch. *)
  ap_merkle_converged : int;  (** Affected replicas converged, Merkle run. *)
  ap_cold_converged : int;  (** Affected replicas converged, cold run. *)
  ap_merkle_ticks_max : int;  (** Worst recovery time, Merkle run. *)
  ap_cold_ticks_max : int;  (** Worst recovery time, cold run. *)
}

val anti_entropy : ?config:ae_config -> unit -> ae_point list
(** The drifted crash/restart sweep: per drift fraction, a star of
    division replicas with unsynced durability is checkpointed, a
    fraction of its leaves crashes, a burst of
    [round (drift * employees)] updates lands while they are down, and
    they restart either by Merkle anti-entropy or by cold re-fetch
    (identical seeds).  Expected shape: merkle bytes grow with drift
    while cold bytes stay flat at full-content cost, with the
    crossover well past the sweep's range — the headline gate asserts
    merkle ≤ 25% of cold at 10% drift. *)

val json_of_ae_points : ae_point list -> string
(** A JSON array (indented for embedding as the [BENCH_PR6.json]
    [points] field). *)

(** {1 Paper-scale content-plane sweep}

    End-to-end run at the paper's directory size: the full enterprise
    behind the root master, [sc_nodes] interior nodes splitting the
    department filters evenly, and a leaf fleet subscribing them
    round-robin.  Leaves attach in batches ([sc_leaf_points]) with the
    heap compacted and sampled after each batch, so memory growth with
    consumer count is measured inside one topology; the update stream
    is diurnally modulated (sinusoidal gap factor in [0.25, 1.75] over
    a two-virtual-day horizon) and the Table 1 query mix with Zipf
    department drift executes during the run — department lookups
    against leaf replicas, serial/mail/location against the indexed
    root. *)

type scale_config = {
  sc_base : Ldap_dirgen.Enterprise.config;
      (** Directory shape; employees and seed are overridden per run. *)
  sc_employees : int;  (** Full-size run. *)
  sc_baseline_employees : int;  (** Same topology, smaller directory. *)
  sc_nodes : int;  (** Interior nodes splitting the dept filters. *)
  sc_leaf_points : int list;  (** Cumulative leaf counts to sample at. *)
  sc_seed : int;
  sc_poll_every : int;
  sc_update_every : int;  (** Nominal gap; diurnally modulated. *)
  sc_updates : int;
  sc_queries : int;  (** Table 1 workload length. *)
  sc_horizon : int;
  sc_history_limit : int;  (** Root master session-history high-water mark. *)
  sc_full : bool;
      (** Include wall-clock and RSS measurements (excluded under smoke
          so the emitted JSON is bit-deterministic for CI diffing). *)
}

val scale_default_config : scale_config
(** 500k employees (60k baseline), 10 nodes over 400 department
    filters, leaves sampled at 250/500/1000. *)

val scale_smoke_config : scale_config
(** Scaled down for [dune runtest] and the CI determinism check. *)

type scale_run = {
  sr_employees : int;
  sr_entries : int;  (** Root content-store size after the run. *)
  sr_filters : int;
  sr_nodes : int;
  sr_leaves : int;
  sr_memory : (int * int * int) list;
      (** Per leaf point: (leaves, live words after [Gc.compact],
          VmRSS kB — 0 unless [sc_full]). *)
  sr_store_bytes : int;  (** Reachable bytes of the root content store. *)
  sr_build_seconds : float;
  sr_polls : int;  (** Incremental polls served across all nodes. *)
  sr_scanned : int;  (** Spine entries walked serving them. *)
  sr_rescans : int;  (** Full-content rescan fallbacks (0 = all O(diff)). *)
  sr_resp_p50 : int;
  sr_resp_p90 : int;
  sr_resp_p99 : int;  (** Leaf poll response, virtual ticks. *)
  sr_stale_samples : int;
  sr_stale_censored : int;
  sr_stale_p50 : int;
  sr_stale_p99 : int;  (** Commit-to-leaf staleness, virtual ticks. *)
  sr_updates : int;
  sr_queries : int;
  sr_query_hits : int;  (** Entries returned across the workload. *)
  sr_mix : (string * float) list;  (** Observed Table 1 mix. *)
  sr_query_seconds : float;  (** Wall seconds executing the workload. *)
  sr_serve_p50_us : float;
  sr_serve_p99_us : float;
      (** Node serve wall time per {e incremental} poll, µs — the
          O(diff)-cost population the gate compares across directory
          sizes. *)
  sr_serve_all_p99_us : float;
      (** p99 over every serve including initial-content and degraded
          transfers, whose cost is O(selection); reported, not gated. *)
  sr_pending_total : int;
  sr_pending_max : int;  (** Root master buffered-action stats. *)
  sr_history_size : int;
  sr_seen_residency : int;  (** Sent-image table entries across nodes. *)
  sr_cursor_depth_max : int;  (** Deepest spine lag of any session. *)
}

val scale : ?config:scale_config -> unit -> scale_run * scale_run
(** Runs the baseline first, then the full size, in one process —
    (baseline, main) — so the process peak RSS belongs to the full
    run. *)

val scanned_per_poll : scale_run -> float
(** Spine entries walked per incremental poll — the O(diff) figure the
    gate compares across directory sizes. *)

val json_of_scale_run : full:bool -> scale_run -> string
(** One run as a JSON object.  With [full = false] the wall-clock,
    RSS and memory fields are omitted so smoke output is
    bit-deterministic. *)

val current_rss_kb : unit -> int
(** VmRSS of this process from /proc/self/status (0 where absent).
    Reading it consumes no virtual time. *)

val peak_rss_kb : unit -> int
(** VmHWM — process peak RSS — same caveats as {!current_rss_kb}. *)
