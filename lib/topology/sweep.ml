open Ldap
module Resync = Ldap_resync
module R = Ldap_replication
module D = Ldap_dirgen

type point = {
  shape : string;
  consumers : int;
  root_sessions : int;
  build_root_bytes : int;
  update_root_bytes : int;
  update_total_bytes : int;
  convergence_rounds : int;
}

type config = {
  consumers_list : int list;
  filters : int;
  arity : int;
  updates : int;
  employees : int;
  seed : int;
}

let default_config =
  {
    consumers_list = [ 100; 200; 500; 1000 ];
    filters = 20;
    arity = 4;
    updates = 200;
    employees = 4000;
    seed = 7;
  }

let smoke_config =
  {
    consumers_list = [ 24; 48 ];
    filters = 8;
    arity = 2;
    updates = 60;
    employees = 800;
    seed = 7;
  }

let enterprise cfg =
  D.Enterprise.build
    {
      D.Enterprise.default_config with
      seed = cfg.seed;
      employees = cfg.employees;
      countries = 4;
      divisions = 4;
      departments_per_division = 12;
      locations = 8;
      target_countries = 2;
    }

let upstream_bytes (s : R.Stats.t) = s.R.Stats.sync_bytes + s.R.Stats.fetch_bytes

let participants_bytes t =
  List.fold_left
    (fun acc l -> acc + upstream_bytes (Leaf.stats l))
    (List.fold_left
       (fun acc n -> acc + upstream_bytes (Node.stats n))
       0 (Topology.nodes t))
    (Topology.leaves t)

let shape_name = function
  | Topology.Star -> "star"
  | Topology.Chain n -> Printf.sprintf "chain%d" n
  | Topology.Tree { arity } -> Printf.sprintf "tree%d" arity

let run_point cfg shape n =
  let ent = enterprise cfg in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = min cfg.filters (Array.length all_depts) in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
  in
  (* Interior nodes store exactly the distinct leaf filters, so a
     node's content is the union of what its leaves need and nothing
     more; leaves pick their filter round-robin, giving the sharing a
     star cannot exploit. *)
  let covers = List.init filters (fun i -> query_of all_depts.(i)) in
  let leaf_queries = List.init n (fun i -> query_of all_depts.(i mod filters)) in
  match Topology.build ~shape ~covers ~leaf_queries backend with
  | Error e -> failwith ("tree-fanout build: " ^ e)
  | Ok t ->
      let build_root = Topology.root_link_bytes t in
      let build_total = participants_bytes t in
      let stream =
        D.Update_stream.create ent
          { D.Update_stream.default_config with seed = cfg.seed + 1 }
      in
      D.Update_stream.steps stream cfg.updates;
      let convergence_rounds =
        match Topology.rounds_to_converge ~max_rounds:12 t with
        | Some r -> r
        | None -> -1
      in
      {
        shape = shape_name shape;
        consumers = n;
        root_sessions = Resync.Master.session_count (Topology.master t);
        build_root_bytes = build_root;
        update_root_bytes = Topology.root_link_bytes t - build_root;
        update_total_bytes = participants_bytes t - build_total;
        convergence_rounds;
      }

let tree_fanout ?(config = default_config) () =
  List.concat_map
    (fun n ->
      [
        run_point config Topology.Star n;
        run_point config (Topology.Tree { arity = config.arity }) n;
      ])
    config.consumers_list

let json_of_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shape\": \"%s\", \"consumers\": %d, \"root_sessions\": %d, \
            \"build_root_bytes\": %d, \"update_root_bytes\": %d, \
            \"update_total_bytes\": %d, \"convergence_rounds\": %d}%s\n"
           p.shape p.consumers p.root_sessions p.build_root_bytes
           p.update_root_bytes p.update_total_bytes p.convergence_rounds
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b
