open Ldap
module Resync = Ldap_resync
module R = Ldap_replication
module D = Ldap_dirgen

type point = {
  shape : string;
  consumers : int;
  root_sessions : int;
  build_root_bytes : int;
  update_root_bytes : int;
  update_total_bytes : int;
  convergence_rounds : int;
}

type config = {
  consumers_list : int list;
  filters : int;
  arity : int;
  updates : int;
  employees : int;
  seed : int;
}

let default_config =
  {
    consumers_list = [ 100; 200; 500; 1000 ];
    filters = 20;
    arity = 4;
    updates = 200;
    employees = 4000;
    seed = 7;
  }

let smoke_config =
  {
    consumers_list = [ 24; 48 ];
    filters = 8;
    arity = 2;
    updates = 60;
    employees = 800;
    seed = 7;
  }

let enterprise cfg =
  D.Enterprise.build
    {
      D.Enterprise.default_config with
      seed = cfg.seed;
      employees = cfg.employees;
      countries = 4;
      divisions = 4;
      departments_per_division = 12;
      locations = 8;
      target_countries = 2;
    }

let upstream_bytes (s : R.Stats.t) =
  s.R.Stats.sync_bytes + s.R.Stats.fetch_bytes + s.R.Stats.merkle_bytes

let participants_bytes t =
  List.fold_left
    (fun acc l -> acc + upstream_bytes (Leaf.stats l))
    (List.fold_left
       (fun acc n -> acc + upstream_bytes (Node.stats n))
       0 (Topology.nodes t))
    (Topology.leaves t)

let shape_name = function
  | Topology.Star -> "star"
  | Topology.Chain n -> Printf.sprintf "chain%d" n
  | Topology.Tree { arity } -> Printf.sprintf "tree%d" arity

let run_point cfg shape n =
  let ent = enterprise cfg in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = min cfg.filters (Array.length all_depts) in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
  in
  (* Interior nodes store exactly the distinct leaf filters, so a
     node's content is the union of what its leaves need and nothing
     more; leaves pick their filter round-robin, giving the sharing a
     star cannot exploit. *)
  let covers = List.init filters (fun i -> query_of all_depts.(i)) in
  let leaf_queries = List.init n (fun i -> query_of all_depts.(i mod filters)) in
  match Topology.build ~shape ~covers ~leaf_queries backend with
  | Error e -> failwith ("tree-fanout build: " ^ e)
  | Ok t ->
      let build_root = Topology.root_link_bytes t in
      let build_total = participants_bytes t in
      let stream =
        D.Update_stream.create ent
          { D.Update_stream.default_config with seed = cfg.seed + 1 }
      in
      D.Update_stream.steps stream cfg.updates;
      let convergence_rounds =
        match Topology.rounds_to_converge ~max_rounds:12 t with
        | Some r -> r
        | None -> -1
      in
      {
        shape = shape_name shape;
        consumers = n;
        root_sessions = Resync.Master.session_count (Topology.master t);
        build_root_bytes = build_root;
        update_root_bytes = Topology.root_link_bytes t - build_root;
        update_total_bytes = participants_bytes t - build_total;
        convergence_rounds;
      }

let tree_fanout ?(config = default_config) () =
  List.concat_map
    (fun n ->
      [
        run_point config Topology.Star n;
        run_point config (Topology.Tree { arity = config.arity }) n;
      ])
    config.consumers_list

(* --- Latency/staleness sweep ------------------------------------------ *)

type lat_config = {
  lat_consumers : int;
  lat_filters : int;
  lat_arity : int;
  lat_employees : int;
  lat_seed : int;
  lat_poll_every : int;
  lat_update_every : int;
  lat_updates : int;
  lat_link_lo : int;
  lat_link_hi : int;
  lat_drop_rate : float;
  lat_horizon : int;
}

let lat_default_config =
  {
    lat_consumers = 48;
    lat_filters = 8;
    lat_arity = 4;
    lat_employees = 2000;
    lat_seed = 7;
    lat_poll_every = 50;
    lat_update_every = 20;
    lat_updates = 40;
    lat_link_lo = 2;
    lat_link_hi = 8;
    lat_drop_rate = 0.2;
    lat_horizon = 1600;
  }

let lat_smoke_config =
  {
    lat_consumers = 12;
    lat_filters = 4;
    lat_arity = 2;
    lat_employees = 400;
    lat_seed = 7;
    lat_poll_every = 40;
    lat_update_every = 20;
    lat_updates = 12;
    lat_link_lo = 2;
    lat_link_hi = 8;
    lat_drop_rate = 0.2;
    lat_horizon = 700;
  }

type lat_point = {
  lp_shape : string;
  lp_faults : string;
  lp_polls : int;
  lp_resp_p50 : int;
  lp_resp_p90 : int;
  lp_resp_p99 : int;
  lp_resp_max : int;
  lp_stale_samples : int;
  lp_stale_censored : int;
  lp_stale_mean : int;
  lp_stale_p50 : int;
  lp_stale_p90 : int;
  lp_stale_p99 : int;
  lp_stale_max : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1)))))

let summarize samples =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  ( percentile arr 0.5,
    percentile arr 0.9,
    percentile arr 0.99,
    if Array.length arr = 0 then 0 else arr.(Array.length arr - 1) )

let run_lat_point cfg shape ~lossy =
  let module Sim = Ldap_sim.Engine in
  let ent = enterprise { default_config with seed = cfg.lat_seed; employees = cfg.lat_employees } in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = min cfg.lat_filters (Array.length all_depts) in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
  in
  let covers = List.init filters (fun i -> query_of all_depts.(i)) in
  let leaf_queries =
    List.init cfg.lat_consumers (fun i -> query_of all_depts.(i mod filters))
  in
  (* Faults stay muted during the synchronous build phase so both
     variants start from an identical, fully fetched topology; the roll
     consumes no PRNG draws while muted, keeping runs reproducible. *)
  let faults_active = ref false in
  let fault_prng = D.Prng.create (cfg.lat_seed + 3) in
  let faults =
    if not lossy then None
    else
      Some
        (Network.Faults.create
           ~drop_request:(cfg.lat_drop_rate /. 2.0)
           ~drop_reply:(cfg.lat_drop_rate /. 2.0)
           ~roll:(fun () ->
             if !faults_active then D.Prng.float fault_prng 1.0 else 1.0)
           ())
  in
  match Topology.build ?faults ~shape ~covers ~leaf_queries backend with
  | Error e -> failwith ("latency-staleness build: " ^ e)
  | Ok t ->
      (* The engine attaches only after the build: all fetches above ran
         immediately at time 0, and from here on every exchange costs
         per-link latency in virtual time. *)
      let engine = Sim.create ~seed:(cfg.lat_seed + 2) () in
      let net = Topology.network t in
      Network.attach_engine net engine;
      Network.set_default_latency net
        (Ldap_sim.Latency.Uniform { lo = cfg.lat_link_lo; hi = cfg.lat_link_hi });
      faults_active := true;
      (* Update stream: one committed update every [lat_update_every]
         ticks, each recording (CSN, commit time) for the staleness
         match below. *)
      let stream =
        D.Update_stream.create ent
          { D.Update_stream.default_config with seed = cfg.lat_seed + 1 }
      in
      let update_times = ref [] in
      let rec update_tick remaining =
        if remaining > 0 then
          Sim.after engine ~delay:cfg.lat_update_every (fun () ->
              D.Update_stream.steps stream 1;
              update_times :=
                (Csn.to_int (Backend.csn backend), Sim.now engine) :: !update_times;
              update_tick (remaining - 1))
      in
      update_tick cfg.lat_updates;
      (* Poll loops: per-leaf response times, and an ack record whenever
         a completed poll advances the leaf's acknowledged CSN. *)
      let resp_samples = ref [] in
      let last_acked = Hashtbl.create (max 4 cfg.lat_consumers) in
      let ack_events = ref [] in
      let on_leaf_poll leaf ~start ~finish =
        resp_samples := (finish - start) :: !resp_samples;
        let name = Leaf.name leaf in
        let csn = Csn.to_int (Leaf.acked_csn leaf) in
        let prev = Option.value ~default:(-1) (Hashtbl.find_opt last_acked name) in
        if csn > prev then begin
          Hashtbl.replace last_acked name csn;
          ack_events := (name, csn, finish) :: !ack_events
        end
      in
      Topology.drive_events ~on_leaf_poll t engine ~poll_every:cfg.lat_poll_every
        ~until:cfg.lat_horizon;
      Sim.run engine;
      (* Staleness: for each committed update and each leaf, the virtual
         time from commit until the leaf first acknowledged a CSN at or
         past the update's.  Updates never covered within the horizon
         are counted censored rather than sampled. *)
      let updates_chrono = List.rev !update_times in
      let stale_samples = ref [] in
      let censored = ref 0 in
      List.iter
        (fun leaf ->
          let name = Leaf.name leaf in
          let acks =
            List.rev
              (List.filter_map
                 (fun (n, csn, at) -> if n = name then Some (csn, at) else None)
                 !ack_events)
          in
          let rec go updates acks =
            match (updates, acks) with
            | [], _ -> ()
            | rest, [] -> censored := !censored + List.length rest
            | (u_csn, u_t) :: urest, ((a_csn, a_t) :: _ as acks) ->
                if a_csn >= u_csn then begin
                  stale_samples := (a_t - u_t) :: !stale_samples;
                  go urest acks
                end
                else go updates (List.tl acks)
          in
          go updates_chrono acks)
        (Topology.leaves t);
      let resp_p50, resp_p90, resp_p99, resp_max = summarize !resp_samples in
      let stale_p50, stale_p90, stale_p99, stale_max = summarize !stale_samples in
      let stale_mean =
        match !stale_samples with
        | [] -> 0
        | l ->
            int_of_float
              (Float.round
                 (float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)))
      in
      {
        lp_shape = shape_name shape;
        lp_faults = (if lossy then "lossy" else "clean");
        lp_polls = List.length !resp_samples;
        lp_resp_p50 = resp_p50;
        lp_resp_p90 = resp_p90;
        lp_resp_p99 = resp_p99;
        lp_resp_max = resp_max;
        lp_stale_samples = List.length !stale_samples;
        lp_stale_censored = !censored;
        lp_stale_mean = stale_mean;
        lp_stale_p50 = stale_p50;
        lp_stale_p90 = stale_p90;
        lp_stale_p99 = stale_p99;
        lp_stale_max = stale_max;
      }

let latency_staleness ?(config = lat_default_config) () =
  let shapes = [ Topology.Star; Topology.Tree { arity = config.lat_arity } ] in
  List.concat_map
    (fun shape ->
      [ run_lat_point config shape ~lossy:false; run_lat_point config shape ~lossy:true ])
    shapes

let json_of_lat_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shape\": \"%s\", \"faults\": \"%s\", \"polls\": %d, \
            \"response_p50\": %d, \"response_p90\": %d, \"response_p99\": %d, \
            \"response_max\": %d, \"stale_samples\": %d, \"stale_censored\": %d, \
            \"stale_mean\": %d, \"stale_p50\": %d, \"stale_p90\": %d, \
            \"stale_p99\": %d, \"stale_max\": %d}%s\n"
           p.lp_shape p.lp_faults p.lp_polls p.lp_resp_p50 p.lp_resp_p90
           p.lp_resp_p99 p.lp_resp_max p.lp_stale_samples p.lp_stale_censored
           p.lp_stale_mean p.lp_stale_p50 p.lp_stale_p90 p.lp_stale_p99
           p.lp_stale_max
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b

(* --- Crash/restart sweep ---------------------------------------------- *)

type cr_config = {
  cr_consumers : int;
  cr_filters : int;
  cr_employees : int;
  cr_seed : int;
  cr_poll_every : int;
  cr_update_every : int;
  cr_updates_before : int;
  cr_updates_after : int;
  cr_crash_fraction : float;
  cr_horizon : int;
  cr_corruptions : int;
}

let cr_default_config =
  {
    cr_consumers = 24;
    cr_filters = 12;
    cr_employees = 1200;
    cr_seed = 7;
    cr_poll_every = 40;
    cr_update_every = 20;
    cr_updates_before = 20;
    cr_updates_after = 40;
    cr_crash_fraction = 0.25;
    cr_horizon = 2000;
    cr_corruptions = 40;
  }

let cr_smoke_config =
  {
    cr_consumers = 8;
    cr_filters = 3;
    cr_employees = 300;
    cr_seed = 7;
    cr_poll_every = 40;
    cr_update_every = 20;
    cr_updates_before = 6;
    cr_updates_after = 6;
    cr_crash_fraction = 0.25;
    cr_horizon = 900;
    cr_corruptions = 12;
  }

type cr_mode = Durable | Durable_torn | Cold | Reparent

let cr_mode_name = function
  | Durable -> "durable"
  | Durable_torn -> "durable-torn"
  | Cold -> "cold"
  | Reparent -> "reparent"

type cr_point = {
  cp_mode : string;
  cp_affected : int;
  cp_resync_bytes : int;
  cp_replayed : int;
  cp_truncated : int;
  cp_recover_ticks_mean : int;
  cp_recover_ticks_max : int;
  cp_converged : int;
}

let run_cr_point cfg mode =
  let module Sim = Ldap_sim.Engine in
  let ent =
    enterprise { default_config with seed = cfg.cr_seed; employees = cfg.cr_employees }
  in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = min cfg.cr_filters (Array.length all_depts) in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
  in
  let leaf_queries =
    List.init cfg.cr_consumers (fun i -> query_of all_depts.(i mod filters))
  in
  let affected =
    let n =
      max 1
        (int_of_float
           (Float.round (cfg.cr_crash_fraction *. float_of_int cfg.cr_consumers)))
    in
    (* Matches the builder's leaf naming (leaf1, leaf2, ...). *)
    List.init n (fun i -> Printf.sprintf "leaf%d" (i + 1))
  in
  let is_affected name = List.mem name affected in
  let t =
    match mode with
    | Reparent ->
        (* The reparent baseline is PR 3's heal: the affected leaves
           sit under a relay node that dies at crash time, so they miss
           the same updates the crashed leaves of the other modes miss,
           and their recovery is cookie-translation plus a degraded
           resync from the root. *)
        let covers = List.init filters (fun i -> query_of all_depts.(i)) in
        let t = Topology.create backend in
        (match
           Topology.add_node t ~name:"relay" ~parent:(Topology.root t) ~covers
         with
        | Ok _ -> ()
        | Error e -> failwith ("crash-restart relay: " ^ e));
        List.iteri
          (fun i q ->
            let name = Printf.sprintf "leaf%d" (i + 1) in
            let parent = if is_affected name then "relay" else Topology.root t in
            match Topology.add_leaf t ~name ~parent q with
            | Ok _ -> ()
            | Error e -> failwith ("crash-restart leaf: " ^ e))
          leaf_queries;
        t
    | Durable | Durable_torn | Cold -> (
        match
          Topology.build ~shape:Topology.Star ~covers:[] ~leaf_queries backend
        with
        | Error e -> failwith ("crash-restart build: " ^ e)
        | Ok t -> t)
  in
  (* Durable variants: every leaf journals to its own medium.  The
         clean variant fsyncs each record, so a crash loses nothing;
         the torn variant syncs only at checkpoints and every crash
         tears the unsynced journal tail (the classic partial-write),
         which recovery must truncate. *)
      let fault_prng = D.Prng.create (cfg.cr_seed + 3) in
      (match mode with
      | Durable -> Topology.enable_durability ~sync:true t
      | Durable_torn ->
          let faults =
            Ldap_store.Medium.Faults.create ~torn_tail:1.0
              ~roll:(fun () -> D.Prng.float fault_prng 1.0)
              ()
          in
          Topology.enable_durability ~faults ~sync:false t;
          Topology.checkpoint_leaves t
      | Cold | Reparent -> ());
      let engine = Sim.create ~seed:(cfg.cr_seed + 2) () in
      let net = Topology.network t in
      Network.attach_engine net engine;
      Network.set_default_latency net (Ldap_sim.Latency.Uniform { lo = 2; hi = 8 });
      let stream =
        D.Update_stream.create ent
          { D.Update_stream.default_config with seed = cfg.cr_seed + 1 }
      in
      let total_updates = cfg.cr_updates_before + cfg.cr_updates_after in
      let rec update_tick remaining =
        if remaining > 0 then
          Sim.after engine ~delay:cfg.cr_update_every (fun () ->
              D.Update_stream.steps stream 1;
              update_tick (remaining - 1))
      in
      update_tick total_updates;
      let crash_time = cfg.cr_updates_before * cfg.cr_update_every in
      let restart_time = (total_updates + 1) * cfg.cr_update_every in
      (* Bytes already paid by an affected leaf when its recovery
         starts; resync bytes are what it pays on top of this.  Crash
         modes restart with a fresh leaf (baseline 0); reparent keeps
         the leaf object and its stats. *)
      let baselines = Hashtbl.create 8 in
      let replayed = ref 0 in
      let truncations = ref 0 in
      let restart_failed = ref false in
      (match mode with
      | Reparent ->
          Sim.schedule engine ~time:crash_time (fun () ->
              List.iter
                (fun node ->
                  if Node.host node = "relay" then Topology.kill_node t node)
                (Topology.nodes t))
      | Durable | Durable_torn | Cold ->
          Sim.schedule engine ~time:crash_time (fun () ->
              List.iter
                (fun leaf ->
                  if is_affected (Leaf.name leaf) then Topology.crash_leaf t leaf)
                (Topology.leaves t)));
      let recovered_at = Hashtbl.create 8 in
      Sim.schedule engine ~time:restart_time (fun () ->
          match mode with
          | Reparent ->
              (* No process death: the orphaned leaves keep in-memory
                 content, and heal re-parents them to the root with
                 cookie translation — the next poll resynchronizes
                 degraded from the acknowledged CSN. *)
              List.iter
                (fun leaf ->
                  let name = Leaf.name leaf in
                  if is_affected name then
                    Hashtbl.replace baselines name
                      (upstream_bytes (Leaf.stats leaf)))
                (Topology.leaves t);
              Topology.heal t
          | Durable | Durable_torn | Cold ->
              List.iter
                (fun name ->
                  Hashtbl.replace baselines name 0;
                  match Topology.restart_leaf t ~name with
                  | Ok (_, report) -> (
                      match report with
                      | None -> ()
                      | Some r ->
                          replayed := !replayed + r.R.Filter_replica.meta_replayed;
                          List.iter
                            (fun f ->
                              replayed := !replayed + f.R.Filter_replica.fr_replayed;
                              if f.R.Filter_replica.fr_truncated then incr truncations)
                            r.R.Filter_replica.filters)
                  | Error _ -> restart_failed := true)
                affected);
      (* Convergence watcher: the first completed poll after recovery
         start at which an affected leaf matches the root marks its
         recovery time. *)
      let on_leaf_poll leaf ~start:_ ~finish =
        let name = Leaf.name leaf in
        if
          is_affected name && finish >= restart_time
          && not (Hashtbl.mem recovered_at name)
          && Topology.leaf_converged t leaf
        then Hashtbl.replace recovered_at name finish
      in
      Topology.drive_events ~on_leaf_poll t engine ~poll_every:cfg.cr_poll_every
        ~until:cfg.cr_horizon;
      Sim.run engine;
      if !restart_failed then failwith "crash-restart: a leaf failed to restart";
      let resync_bytes =
        List.fold_left
          (fun acc leaf ->
            let name = Leaf.name leaf in
            if is_affected name then
              acc + upstream_bytes (Leaf.stats leaf)
              - Option.value ~default:0 (Hashtbl.find_opt baselines name)
            else acc)
          0 (Topology.leaves t)
      in
      let recovery_ticks =
        List.filter_map
          (fun name ->
            Option.map (fun at -> at - restart_time) (Hashtbl.find_opt recovered_at name))
          affected
      in
      let mean l =
        match l with
        | [] -> 0
        | _ ->
            int_of_float
              (Float.round
                 (float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)))
      in
      {
        cp_mode = cr_mode_name mode;
        cp_affected = List.length affected;
        cp_resync_bytes = resync_bytes;
        cp_replayed = !replayed;
        cp_truncated = !truncations;
        cp_recover_ticks_mean = mean recovery_ticks;
        cp_recover_ticks_max = List.fold_left max 0 recovery_ticks;
        cp_converged = List.length recovery_ticks;
      }

let crash_restart ?(config = cr_default_config) () =
  List.map (run_cr_point config) [ Durable; Durable_torn; Cold; Reparent ]

(* --- Randomized WAL-corruption sweep ----------------------------------- *)

type corruption_summary = {
  cs_trials : int;
  cs_recovered : int;  (** Recoveries that returned a consumer. *)
  cs_truncated : int;  (** Recoveries that had to cut a torn/corrupt tail. *)
  cs_discarded : int;  (** Recoveries that discarded a stale-generation log. *)
  cs_repaired_merkle : int;  (** Damaged recoveries repaired by Merkle walk. *)
  cs_repaired_cold : int;  (** Damaged recoveries repaired by cold re-fetch. *)
  cs_stale : int;
      (** Trials whose content still diverged from the master after
          recovery completed — forced repair for damaged recoveries, a
          resume poll for clean ones — must be 0: no corruption may
          leave a replica serving stale reads. *)
  cs_panics : int;  (** Recoveries that raised — must be 0. *)
}

let corruption_sweep ?(config = cr_default_config) () =
  (* Grow a reference consumer store — snapshot mid-stream, journal
     records after — then recover from randomly mutilated copies of
     its files: truncated at an arbitrary byte, or with one byte
     flipped.  Whatever the damage, recovery must return (possibly
     with truncation), never raise — and must never leave the replica
     serving stale reads: a damaged recovery (torn or stale WAL) is
     repaired in place by Merkle anti-entropy (cold re-fetch as
     fallback), and a clean one resumes from its durable cookie with
     one poll, exactly the path a restarted replica takes before
     answering queries.  Any trial still divergent afterwards counts
     as stale. *)
  let ent =
    enterprise
      { default_config with seed = config.cr_seed; employees = config.cr_employees }
  in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let query =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" all_depts.(0)))
  in
  let schema = Backend.schema backend in
  let master = Resync.Master.create backend in
  let consumer = Resync.Consumer.create schema query in
  let medium = Ldap_store.Medium.memory () in
  let store = Ldap_store.Store.create medium ~name:"c" in
  Resync.Consumer.attach_store consumer store;
  let stream =
    D.Update_stream.create ent
      { D.Update_stream.default_config with seed = config.cr_seed + 1 }
  in
  let poll () =
    match Resync.Consumer.sync consumer master with
    | Ok _ -> ()
    | Error e -> failwith ("corruption sweep poll: " ^ e)
  in
  poll ();
  D.Update_stream.steps stream config.cr_updates_before;
  poll ();
  Resync.Consumer.checkpoint consumer;
  D.Update_stream.steps stream config.cr_updates_after;
  poll ();
  let wal = Option.value ~default:"" (Ldap_store.Medium.read medium ~name:"c.wal") in
  let snap = Option.value ~default:"" (Ldap_store.Medium.read medium ~name:"c.snap") in
  let transport = Resync.Transport.loopback master in
  let canon entries =
    List.sort
      (fun a b -> compare (Dn.canonical (Entry.dn a)) (Dn.canonical (Entry.dn b)))
      entries
  in
  let reference = canon (Resync.Content.current backend query) in
  let diverged c =
    let got = canon (Resync.Consumer.entries c) in
    List.length got <> List.length reference
    || not (List.for_all2 Entry.equal got reference)
  in
  let prng = D.Prng.create (config.cr_seed + 5) in
  let recovered = ref 0 and truncated = ref 0 and discarded = ref 0 in
  let repaired_merkle = ref 0 and repaired_cold = ref 0 in
  let stale = ref 0 and panics = ref 0 in
  for _ = 1 to config.cr_corruptions do
    let mutate s =
      if String.length s = 0 then s
      else
        match D.Prng.int prng 3 with
        | 0 -> String.sub s 0 (D.Prng.int prng (String.length s))
        | 1 ->
            let i = D.Prng.int prng (String.length s) in
            let b = Bytes.of_string s in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + D.Prng.int prng 255)));
            Bytes.to_string b
        | _ -> s
    in
    let m = Ldap_store.Medium.memory () in
    let put name s =
      if String.length s > 0 then begin
        Ldap_store.Medium.append m ~name s;
        Ldap_store.Medium.sync m ~name
      end
    in
    (* The snapshot is replaced atomically in real operation, so only
       the WAL gets arbitrary damage; still flip snapshot bytes in a
       third of the trials to check the CRC path. *)
    put "c.wal" (mutate wal);
    put "c.snap" (if D.Prng.int prng 3 = 0 then mutate snap else snap);
    let fresh = Ldap_store.Store.create m ~name:"c" in
    match Resync.Consumer.recover schema query fresh with
    | Ok (c, r) ->
        incr recovered;
        if r.Ldap_store.Store.truncated then incr truncated;
        if r.Ldap_store.Store.stale > 0 then incr discarded;
        (* Close the recovery before the replica serves reads: damaged
           durable state forces an immediate resync (Merkle first,
           cold fallback); clean state resumes from its coherent
           durable cookie with one poll — which also recovers a
           cleanly-lost WAL tail via the master's degraded reply. *)
        let damaged =
          r.Ldap_store.Store.truncated || r.Ldap_store.Store.stale > 0
        in
        (if damaged then
           match
             Resync.Consumer.merkle_sync c transport
               ~host:Resync.Transport.loopback_host
           with
           | Ok { Ldap_antientropy.Exchange.converged = true; _ } ->
               incr repaired_merkle
           | Ok _ | Error _ ->
               incr repaired_cold;
               Resync.Consumer.set_cookie c None;
               ignore
                 (Resync.Consumer.sync_over c transport
                    ~host:Resync.Transport.loopback_host)
         else
           ignore
             (Resync.Consumer.sync_over c transport
                ~host:Resync.Transport.loopback_host));
        if diverged c then incr stale
    | Error _ -> ()
    | exception _ -> incr panics
  done;
  {
    cs_trials = config.cr_corruptions;
    cs_recovered = !recovered;
    cs_truncated = !truncated;
    cs_discarded = !discarded;
    cs_repaired_merkle = !repaired_merkle;
    cs_repaired_cold = !repaired_cold;
    cs_stale = !stale;
    cs_panics = !panics;
  }

let json_of_cr_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"affected\": %d, \"resync_bytes\": %d, \
            \"replayed\": %d, \"truncated\": %d, \"recover_ticks_mean\": %d, \
            \"recover_ticks_max\": %d, \"converged\": %d}%s\n"
           p.cp_mode p.cp_affected p.cp_resync_bytes p.cp_replayed p.cp_truncated
           p.cp_recover_ticks_mean p.cp_recover_ticks_max p.cp_converged
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b

let json_of_corruption c =
  Printf.sprintf
    "{\"trials\": %d, \"recovered\": %d, \"truncated\": %d, \"discarded\": %d, \
     \"repaired_merkle\": %d, \"repaired_cold\": %d, \"stale\": %d, \
     \"panics\": %d}"
    c.cs_trials c.cs_recovered c.cs_truncated c.cs_discarded c.cs_repaired_merkle
    c.cs_repaired_cold c.cs_stale c.cs_panics

(* --- Anti-entropy drift sweep ------------------------------------------ *)

type ae_config = {
  ae_consumers : int;
  ae_employees : int;
  ae_seed : int;
  ae_poll_every : int;
  ae_crash_fraction : float;
  ae_drifts : float list;
  ae_horizon : int;
}

let ae_default_config =
  {
    ae_consumers = 16;
    ae_employees = 1200;
    ae_seed = 7;
    ae_poll_every = 40;
    ae_crash_fraction = 0.25;
    ae_drifts = [ 0.0; 0.05; 0.1; 0.25; 0.5 ];
    ae_horizon = 1200;
  }

let ae_smoke_config =
  {
    ae_consumers = 8;
    ae_employees = 400;
    ae_seed = 7;
    ae_poll_every = 40;
    ae_crash_fraction = 0.25;
    ae_drifts = [ 0.0; 0.1; 0.5 ];
    ae_horizon = 800;
  }

type ae_point = {
  ap_drift : float;
  ap_updates : int;  (** Updates the downed replicas missed. *)
  ap_affected : int;
  ap_merkle_bytes : int;
  ap_cold_bytes : int;
  ap_merkle_converged : int;
  ap_cold_converged : int;
  ap_merkle_ticks_max : int;
  ap_cold_ticks_max : int;
}

(* One drifted crash/restart scenario: a star of division replicas with
   unsynced durability, checkpointed after the build.  A fraction of
   the leaves crashes {e before} a burst of [round (drift * employees)]
   updates lands at the root, so their durable checkpoints miss exactly
   that drift; they then restart in the given mode — [Merkle] walks the
   hash tree and ships only drifted segments, [Cold] re-fetches
   everything — and the bytes each affected leaf pays to rejoin are
   captured at restart time, before regular polling resumes. *)
let run_ae_mode cfg drift mode =
  let module Sim = Ldap_sim.Engine in
  let ent =
    enterprise
      { default_config with seed = cfg.ae_seed; employees = cfg.ae_employees }
  in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%02d*)" d))
  in
  (* Division-prefix filters — department numbers are
     <division><dept>, so the prefix selects a whole division's
     employees and department entries — give each replica a
     substantial slice (a quarter of the directory), measuring the
     hash-tree overhead against a realistic content size unlike the
     tiny single-department filters. *)
  let divisions = 4 in
  let leaf_queries =
    List.init cfg.ae_consumers (fun i -> query_of (i mod divisions))
  in
  let affected =
    let n =
      max 1
        (int_of_float
           (Float.round (cfg.ae_crash_fraction *. float_of_int cfg.ae_consumers)))
    in
    List.init n (fun i -> Printf.sprintf "leaf%d" (i + 1))
  in
  let is_affected name = List.mem name affected in
  let t =
    match Topology.build ~shape:Topology.Star ~covers:[] ~leaf_queries backend with
    | Error e -> failwith ("anti-entropy build: " ^ e)
    | Ok t -> t
  in
  (* Unsynced durability: only checkpoints survive a crash, so the
     downed replicas recover exactly their pre-drift checkpoint. *)
  Topology.enable_durability ~sync:false t;
  Topology.checkpoint_leaves t;
  let engine = Sim.create ~seed:(cfg.ae_seed + 2) () in
  let net = Topology.network t in
  Network.attach_engine net engine;
  Network.set_default_latency net (Ldap_sim.Latency.Uniform { lo = 2; hi = 8 });
  let updates =
    int_of_float (Float.round (drift *. float_of_int cfg.ae_employees))
  in
  let stream =
    D.Update_stream.create ent
      { D.Update_stream.default_config with seed = cfg.ae_seed + 1 }
  in
  let crash_time = 10 in
  let drift_time = 20 in
  let restart_time = 30 in
  Sim.schedule engine ~time:crash_time (fun () ->
      List.iter
        (fun leaf ->
          if is_affected (Leaf.name leaf) then Topology.crash_leaf t leaf)
        (Topology.leaves t));
  Sim.schedule engine ~time:drift_time (fun () ->
      D.Update_stream.steps stream updates);
  let resync_bytes = ref 0 in
  let restart_failed = ref false in
  Sim.schedule engine ~time:restart_time (fun () ->
      List.iter
        (fun name ->
          match Topology.restart_leaf ~mode t ~name with
          | Ok (leaf, _) ->
              (* The Merkle walk (or the cold re-fetch) completes inside
                 the restart, so the leaf's upstream bytes here are
                 exactly its cost to rejoin. *)
              resync_bytes := !resync_bytes + upstream_bytes (Leaf.stats leaf)
          | Error _ -> restart_failed := true)
        affected);
  let recovered_at = Hashtbl.create 8 in
  let on_leaf_poll leaf ~start:_ ~finish =
    let name = Leaf.name leaf in
    if
      is_affected name && finish >= restart_time
      && not (Hashtbl.mem recovered_at name)
      && Topology.leaf_converged t leaf
    then Hashtbl.replace recovered_at name finish
  in
  Topology.drive_events ~on_leaf_poll t engine ~poll_every:cfg.ae_poll_every
    ~until:cfg.ae_horizon;
  Sim.run engine;
  if !restart_failed then failwith "anti-entropy sweep: a leaf failed to restart";
  let ticks =
    List.filter_map
      (fun name ->
        Option.map
          (fun at -> at - restart_time)
          (Hashtbl.find_opt recovered_at name))
      affected
  in
  ( !resync_bytes,
    List.length ticks,
    List.fold_left max 0 ticks,
    List.length affected,
    updates )

let run_ae_point cfg drift =
  let m_bytes, m_conv, m_ticks, affected, updates =
    run_ae_mode cfg drift Topology.Merkle
  in
  let c_bytes, c_conv, c_ticks, _, _ = run_ae_mode cfg drift Topology.Cold in
  {
    ap_drift = drift;
    ap_updates = updates;
    ap_affected = affected;
    ap_merkle_bytes = m_bytes;
    ap_cold_bytes = c_bytes;
    ap_merkle_converged = m_conv;
    ap_cold_converged = c_conv;
    ap_merkle_ticks_max = m_ticks;
    ap_cold_ticks_max = c_ticks;
  }

let anti_entropy ?(config = ae_default_config) () =
  List.map (run_ae_point config) config.ae_drifts

let json_of_ae_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"drift\": %.2f, \"updates\": %d, \"affected\": %d, \
            \"merkle_bytes\": %d, \"cold_bytes\": %d, \"merkle_converged\": %d, \
            \"cold_converged\": %d, \"merkle_ticks_max\": %d, \
            \"cold_ticks_max\": %d}%s\n"
           p.ap_drift p.ap_updates p.ap_affected p.ap_merkle_bytes p.ap_cold_bytes
           p.ap_merkle_converged p.ap_cold_converged p.ap_merkle_ticks_max
           p.ap_cold_ticks_max
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b

let json_of_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shape\": \"%s\", \"consumers\": %d, \"root_sessions\": %d, \
            \"build_root_bytes\": %d, \"update_root_bytes\": %d, \
            \"update_total_bytes\": %d, \"convergence_rounds\": %d}%s\n"
           p.shape p.consumers p.root_sessions p.build_root_bytes
           p.update_root_bytes p.update_total_bytes p.convergence_rounds
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b

(* --- Paper-scale content-plane sweep -----------------------------------
   End-to-end run of the paper's enterprise at its real size: the full
   directory behind one root master, a tier of interior nodes splitting
   the department filters, and a leaf fleet subscribing them
   round-robin.  Leaves attach in batches so memory can be sampled at
   growing consumer counts on ONE topology; the update stream is
   diurnally modulated over the virtual horizon and the Table 1 query
   mix (with Zipf drift) executes against the leaf replicas (department
   lookups) and the indexed root (everything else). *)

type scale_config = {
  sc_base : D.Enterprise.config;  (* shape; employees/seed overridden *)
  sc_employees : int;
  sc_baseline_employees : int;
  sc_nodes : int;
  sc_leaf_points : int list;
  sc_seed : int;
  sc_poll_every : int;
  sc_update_every : int;
  sc_updates : int;
  sc_queries : int;
  sc_horizon : int;
  sc_history_limit : int;
  sc_full : bool;
}

let scale_default_config =
  {
    sc_base = D.Enterprise.default_config;
    sc_employees = 500_000;
    sc_baseline_employees = 60_000;
    sc_nodes = 10;
    sc_leaf_points = [ 250; 500; 1000 ];
    sc_seed = 11;
    sc_poll_every = 50;
    sc_update_every = 10;
    sc_updates = 200;
    sc_queries = 5000;
    sc_horizon = 3000;
    sc_history_limit = 512;
    sc_full = true;
  }

let scale_smoke_config =
  {
    sc_base =
      {
        D.Enterprise.default_config with
        countries = 4;
        divisions = 4;
        departments_per_division = 12;
        locations = 8;
        target_countries = 2;
      };
    sc_employees = 1_500;
    sc_baseline_employees = 800;
    sc_nodes = 4;
    sc_leaf_points = [ 12; 24; 48 ];
    sc_seed = 11;
    sc_poll_every = 40;
    sc_update_every = 20;
    sc_updates = 24;
    sc_queries = 200;
    sc_horizon = 600;
    sc_history_limit = 64;
    sc_full = false;
  }

type scale_run = {
  sr_employees : int;
  sr_entries : int;
  sr_filters : int;
  sr_nodes : int;
  sr_leaves : int;
  sr_memory : (int * int * int) list;
      (* (leaves, live words after compaction, VmRSS kB or 0) *)
  sr_store_bytes : int;
  sr_build_seconds : float;
  sr_polls : int;
  sr_scanned : int;
  sr_rescans : int;
  sr_resp_p50 : int;
  sr_resp_p90 : int;
  sr_resp_p99 : int;
  sr_stale_samples : int;
  sr_stale_censored : int;
  sr_stale_p50 : int;
  sr_stale_p99 : int;
  sr_updates : int;
  sr_queries : int;
  sr_query_hits : int;
  sr_mix : (string * float) list;
  sr_query_seconds : float;
  sr_serve_p50_us : float;
  sr_serve_p99_us : float;
  sr_serve_all_p99_us : float;
  sr_pending_total : int;
  sr_pending_max : int;
  sr_history_size : int;
  sr_seen_residency : int;
  sr_cursor_depth_max : int;
}

(* /proc/self/status sampling: virtual-clock-safe (a file read consumes
   no simulated time) and absent-proc-safe (0 outside Linux). *)
let proc_status_kb key =
  match open_in "/proc/self/status" with
  | exception _ -> 0
  | ic ->
      let prefix = key ^ ":" in
      let rec go () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if
              String.length line >= String.length prefix
              && String.sub line 0 (String.length prefix) = prefix
            then
              String.fold_left
                (fun acc c ->
                  if c >= '0' && c <= '9' then (acc * 10) + Char.code c - 48
                  else acc)
                0 line
            else go ()
      in
      let v = go () in
      close_in ic;
      v

let current_rss_kb () = proc_status_kb "VmRSS"
let peak_rss_kb () = proc_status_kb "VmHWM"

let fpercentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1)))))

let run_scale_at cfg ~employees =
  let module Sim = Ldap_sim.Engine in
  let t0 = Sys.time () in
  let ent =
    D.Enterprise.build { cfg.sc_base with employees; seed = cfg.sc_seed }
  in
  let build_seconds = Sys.time () -. t0 in
  let backend = D.Enterprise.backend ent in
  let schema = D.Enterprise.schema ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = Array.length all_depts in
  let dept_queries =
    Array.map
      (fun d ->
        Query.make ~base
          (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d)))
      all_depts
  in
  let t = Topology.create backend in
  (* Bounded per-session history at the root: past the high-water mark
     the master escalates stragglers to a snapshot-diff instead of
     buffering for them. *)
  Resync.Master.set_history_limit (Topology.master t) (Some cfg.sc_history_limit);
  let node_count = min cfg.sc_nodes filters in
  for i = 0 to node_count - 1 do
    let covers =
      List.filter_map
        (fun j -> if j mod node_count = i then Some dept_queries.(j) else None)
        (List.init filters Fun.id)
    in
    match
      Topology.add_node t
        ~name:(Printf.sprintf "node%d" i)
        ~parent:(Topology.root t) ~covers
    with
    | Ok _ -> ()
    | Error e -> failwith ("scale: add_node: " ^ e)
  done;
  (* Leaves join in batches; after each batch the heap is compacted and
     sampled, so the growth of live words with consumer count is
     measured inside one topology (replicas share interned entries —
     the curve must stay well under linear). *)
  let leaf_points = List.sort_uniq compare cfg.sc_leaf_points in
  let leaves_by_dept = Array.make filters [] in
  let added = ref 0 in
  let memory = ref [] in
  List.iter
    (fun target ->
      while !added < target do
        let i = !added in
        let fidx = i mod filters in
        let parent = Printf.sprintf "node%d" (fidx mod node_count) in
        (match
           Topology.add_leaf t ~name:(Printf.sprintf "leaf%d" i) ~parent
             dept_queries.(fidx)
         with
        | Ok leaf -> leaves_by_dept.(fidx) <- leaf :: leaves_by_dept.(fidx)
        | Error e -> failwith ("scale: add_leaf: " ^ e));
        incr added
      done;
      Gc.compact ();
      let live = (Gc.stat ()).Gc.live_words in
      memory :=
        (target, live, if cfg.sc_full then current_rss_kb () else 0) :: !memory)
    leaf_points;
  (* From here on, exchanges cost virtual time. *)
  let engine = Sim.create ~seed:(cfg.sc_seed + 2) () in
  Network.attach_engine (Topology.network t) engine;
  Network.set_default_latency (Topology.network t)
    (Ldap_sim.Latency.Uniform { lo = 1; hi = 4 });
  (* Diurnal load: the gap between updates shrinks and stretches with a
     sinusoidal factor in [0.25, 1.75] over a two-day horizon, so polls
     see both quiet and busy spine segments. *)
  let day = max 2 (cfg.sc_horizon / 2) in
  let diurnal now =
    let phase =
      2.0 *. Float.pi *. float_of_int (now mod day) /. float_of_int day
    in
    1.0 +. (0.75 *. sin phase)
  in
  let modulated gap now =
    max 1 (int_of_float (Float.round (float_of_int gap /. diurnal now)))
  in
  let stream =
    D.Update_stream.create ent
      { D.Update_stream.default_config with seed = cfg.sc_seed + 1 }
  in
  let update_times = ref [] in
  let updates_done = ref 0 in
  let rec update_tick remaining =
    if remaining > 0 then
      Sim.after engine
        ~delay:(modulated cfg.sc_update_every (Sim.now engine))
        (fun () ->
          D.Update_stream.steps stream 1;
          incr updates_done;
          update_times :=
            (Csn.to_int (Backend.csn backend), Sim.now engine) :: !update_times;
          update_tick (remaining - 1))
  in
  update_tick cfg.sc_updates;
  (* Table 1 query mix with periodic department-popularity drift.
     Department lookups hit a subscribed leaf replica (round-robin over
     the department's leaves); serial/mail/location queries go to the
     indexed root, the paper's split between replica-served and
     directory-served traffic. *)
  let items =
    D.Workload.generate ent
      {
        D.Workload.default_config with
        seed = cfg.sc_seed + 4;
        length = cfg.sc_queries;
        dept_drift_every = max 1 (cfg.sc_queries / 8);
      }
  in
  let mix =
    List.map
      (fun (k, f) -> (D.Workload.kind_name k, f))
      (D.Workload.mix_of items)
  in
  let dept_index = Hashtbl.create (2 * filters) in
  Array.iteri (fun j d -> Hashtbl.replace dept_index d j) all_depts;
  let dept_of_item (it : D.Workload.item) =
    Filter.fold_pred
      (fun acc p ->
        match (acc, p) with
        | None, Filter.Equality (a, v)
          when String.lowercase_ascii a = "departmentnumber" ->
            Hashtbl.find_opt dept_index v
        | _ -> acc)
      None it.D.Workload.query.Query.filter
  in
  let rr = Array.make filters 0 in
  let query_hits = ref 0 in
  let query_wall = ref 0.0 in
  let queries_done = ref 0 in
  let run_query (it : D.Workload.item) =
    let q0 = Sys.time () in
    let n =
      match dept_of_item it with
      | Some fidx when leaves_by_dept.(fidx) <> [] ->
          let ls = leaves_by_dept.(fidx) in
          let k = rr.(fidx) in
          rr.(fidx) <- k + 1;
          let leaf = List.nth ls (k mod List.length ls) in
          List.length
            (R.Replica.eval_over_entries schema it.D.Workload.query
               (Leaf.content_seq leaf dept_queries.(fidx)))
      | _ -> (
          match Backend.search backend it.D.Workload.query with
          | Ok r -> List.length r.Backend.entries
          | Error _ -> 0)
    in
    query_wall := !query_wall +. (Sys.time () -. q0);
    query_hits := !query_hits + n;
    incr queries_done
  in
  let q_gap = max 1 (cfg.sc_horizon / max 1 cfg.sc_queries) in
  let qi = ref 0 in
  let rec query_tick () =
    if !qi < Array.length items then
      Sim.after engine ~delay:(modulated q_gap (Sim.now engine)) (fun () ->
          run_query items.(!qi);
          incr qi;
          query_tick ())
  in
  query_tick ();
  let resp_samples = ref [] in
  let last_acked = Hashtbl.create 1024 in
  let ack_events = Hashtbl.create 1024 in
  let on_leaf_poll leaf ~start ~finish =
    resp_samples := (finish - start) :: !resp_samples;
    let name = Leaf.name leaf in
    let csn = Csn.to_int (Leaf.acked_csn leaf) in
    let prev = Option.value ~default:(-1) (Hashtbl.find_opt last_acked name) in
    if csn > prev then begin
      Hashtbl.replace last_acked name csn;
      let past = Option.value ~default:[] (Hashtbl.find_opt ack_events name) in
      Hashtbl.replace ack_events name ((csn, finish) :: past)
    end
  in
  Topology.drive_events ~on_leaf_poll t engine ~poll_every:cfg.sc_poll_every
    ~until:cfg.sc_horizon;
  Sim.run engine;
  (* Commit-to-leaf staleness, as in the latency sweep: per update and
     leaf, virtual time from commit to the first poll acknowledging a
     CSN at or past it; horizon-uncovered pairs count censored. *)
  let updates_chrono = List.rev !update_times in
  let stale_samples = ref [] in
  let censored = ref 0 in
  List.iter
    (fun leaf ->
      let acks =
        List.rev
          (Option.value ~default:[]
             (Hashtbl.find_opt ack_events (Leaf.name leaf)))
      in
      let rec go updates acks =
        match (updates, acks) with
        | [], _ -> ()
        | rest, [] -> censored := !censored + List.length rest
        | (u_csn, u_t) :: urest, ((a_csn, a_t) :: _ as acks) ->
            if a_csn >= u_csn then begin
              stale_samples := (a_t - u_t) :: !stale_samples;
              go urest acks
            end
            else go updates (List.tl acks)
      in
      go updates_chrono acks)
    (Topology.leaves t);
  let resp_p50, resp_p90, resp_p99, _ = summarize !resp_samples in
  let stale_p50, _, stale_p99, _ = summarize !stale_samples in
  let polls, scanned, rescans =
    List.fold_left
      (fun (a, b, c) n ->
        let p, s, r = Node.cursor_stats n in
        (a + p, b + s, c + r))
      (0, 0, 0) (Topology.nodes t)
  in
  let sorted_samples of_node =
    let arr = Array.of_list (List.concat_map of_node (Topology.nodes t)) in
    Array.sort compare arr;
    arr
  in
  (* Gate serve cost on the incremental population only: initial and
     degraded transfers are O(selection) by design and would otherwise
     drown the O(diff) claim at full directory size. *)
  let serve_sorted = sorted_samples Node.incremental_serve_samples in
  let serve_all_sorted = sorted_samples Node.serve_samples in
  let pending_total, pending_max =
    Resync.Master.pending_stats (Topology.master t)
  in
  let seen_residency =
    List.fold_left (fun acc n -> acc + Node.seen_residency n) 0 (Topology.nodes t)
  in
  let cursor_depth_max =
    List.fold_left
      (fun acc n -> List.fold_left max acc (Node.cursor_depths n))
      0 (Topology.nodes t)
  in
  let store = Backend.content_store backend in
  {
    sr_employees = employees;
    sr_entries = Ldap.Content_store.size store;
    sr_filters = filters;
    sr_nodes = node_count;
    sr_leaves = !added;
    sr_memory = List.rev !memory;
    sr_store_bytes = Ldap.Content_store.approx_bytes store;
    sr_build_seconds = build_seconds;
    sr_polls = polls;
    sr_scanned = scanned;
    sr_rescans = rescans;
    sr_resp_p50 = resp_p50;
    sr_resp_p90 = resp_p90;
    sr_resp_p99 = resp_p99;
    sr_stale_samples = List.length !stale_samples;
    sr_stale_censored = !censored;
    sr_stale_p50 = stale_p50;
    sr_stale_p99 = stale_p99;
    sr_updates = !updates_done;
    sr_queries = !queries_done;
    sr_query_hits = !query_hits;
    sr_mix = mix;
    sr_query_seconds = !query_wall;
    sr_serve_p50_us = 1e6 *. fpercentile serve_sorted 0.5;
    sr_serve_p99_us = 1e6 *. fpercentile serve_sorted 0.99;
    sr_serve_all_p99_us = 1e6 *. fpercentile serve_all_sorted 0.99;
    sr_pending_total = pending_total;
    sr_pending_max = pending_max;
    sr_history_size = Resync.Master.history_size (Topology.master t);
    sr_seen_residency = seen_residency;
    sr_cursor_depth_max = cursor_depth_max;
  }

let scale ?(config = scale_default_config) () =
  (* Baseline first: the peak RSS of the process then belongs to the
     full-size run, which is what BENCH_PR9 reports. *)
  let baseline = run_scale_at config ~employees:config.sc_baseline_employees in
  Gc.compact ();
  let main = run_scale_at config ~employees:config.sc_employees in
  (baseline, main)

let scanned_per_poll r =
  if r.sr_polls = 0 then 0.0
  else float_of_int r.sr_scanned /. float_of_int r.sr_polls

let json_of_scale_run ~full r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "      \"employees\": %d, \"entries\": %d, \"filters\": %d, \
        \"nodes\": %d, \"leaves\": %d,\n"
       r.sr_employees r.sr_entries r.sr_filters r.sr_nodes r.sr_leaves);
  if full then begin
    Buffer.add_string b "      \"memory\": [";
    List.iteri
      (fun i (leaves, live, rss) ->
        Buffer.add_string b
          (Printf.sprintf "%s{\"leaves\": %d, \"live_words\": %d, \"vm_rss_kb\": %d}"
             (if i = 0 then "" else ", ")
             leaves live rss))
      r.sr_memory;
    Buffer.add_string b "],\n";
    Buffer.add_string b
      (Printf.sprintf
         "      \"store_bytes\": %d, \"build_seconds\": %.2f, \
          \"query_seconds\": %.3f, \"search_per_second\": %.0f,\n"
         r.sr_store_bytes r.sr_build_seconds r.sr_query_seconds
         (if r.sr_query_seconds > 0.0 then
            float_of_int r.sr_queries /. r.sr_query_seconds
          else 0.0));
    Buffer.add_string b
      (Printf.sprintf
         "      \"serve_p50_us\": %.1f, \"serve_p99_us\": %.1f, \
          \"serve_all_p99_us\": %.1f,\n"
         r.sr_serve_p50_us r.sr_serve_p99_us r.sr_serve_all_p99_us)
  end;
  Buffer.add_string b
    (Printf.sprintf
       "      \"polls\": %d, \"scanned\": %d, \"rescans\": %d, \
        \"scanned_per_poll\": %.2f,\n"
       r.sr_polls r.sr_scanned r.sr_rescans (scanned_per_poll r));
  Buffer.add_string b
    (Printf.sprintf
       "      \"response_p50\": %d, \"response_p90\": %d, \"response_p99\": %d,\n"
       r.sr_resp_p50 r.sr_resp_p90 r.sr_resp_p99);
  Buffer.add_string b
    (Printf.sprintf
       "      \"stale_samples\": %d, \"stale_censored\": %d, \
        \"stale_p50\": %d, \"stale_p99\": %d,\n"
       r.sr_stale_samples r.sr_stale_censored r.sr_stale_p50 r.sr_stale_p99);
  Buffer.add_string b
    (Printf.sprintf
       "      \"updates\": %d, \"queries\": %d, \"query_hits\": %d,\n"
       r.sr_updates r.sr_queries r.sr_query_hits);
  Buffer.add_string b "      \"mix\": {";
  List.iteri
    (fun i (k, f) ->
      Buffer.add_string b
        (Printf.sprintf "%s\"%s\": %.3f" (if i = 0 then "" else ", ") k f))
    r.sr_mix;
  Buffer.add_string b "},\n";
  Buffer.add_string b
    (Printf.sprintf
       "      \"session_pending_total\": %d, \"session_pending_max\": %d, \
        \"history_size\": %d, \"seen_residency\": %d, \"cursor_depth_max\": %d\n"
       r.sr_pending_total r.sr_pending_max r.sr_history_size r.sr_seen_residency
       r.sr_cursor_depth_max);
  Buffer.add_string b "    }";
  Buffer.contents b
