open Ldap
module Resync = Ldap_resync
module R = Ldap_replication
module D = Ldap_dirgen

type point = {
  shape : string;
  consumers : int;
  root_sessions : int;
  build_root_bytes : int;
  update_root_bytes : int;
  update_total_bytes : int;
  convergence_rounds : int;
}

type config = {
  consumers_list : int list;
  filters : int;
  arity : int;
  updates : int;
  employees : int;
  seed : int;
}

let default_config =
  {
    consumers_list = [ 100; 200; 500; 1000 ];
    filters = 20;
    arity = 4;
    updates = 200;
    employees = 4000;
    seed = 7;
  }

let smoke_config =
  {
    consumers_list = [ 24; 48 ];
    filters = 8;
    arity = 2;
    updates = 60;
    employees = 800;
    seed = 7;
  }

let enterprise cfg =
  D.Enterprise.build
    {
      D.Enterprise.default_config with
      seed = cfg.seed;
      employees = cfg.employees;
      countries = 4;
      divisions = 4;
      departments_per_division = 12;
      locations = 8;
      target_countries = 2;
    }

let upstream_bytes (s : R.Stats.t) =
  s.R.Stats.sync_bytes + s.R.Stats.fetch_bytes + s.R.Stats.merkle_bytes

let participants_bytes t =
  List.fold_left
    (fun acc l -> acc + upstream_bytes (Leaf.stats l))
    (List.fold_left
       (fun acc n -> acc + upstream_bytes (Node.stats n))
       0 (Topology.nodes t))
    (Topology.leaves t)

let shape_name = function
  | Topology.Star -> "star"
  | Topology.Chain n -> Printf.sprintf "chain%d" n
  | Topology.Tree { arity } -> Printf.sprintf "tree%d" arity

let run_point cfg shape n =
  let ent = enterprise cfg in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = min cfg.filters (Array.length all_depts) in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
  in
  (* Interior nodes store exactly the distinct leaf filters, so a
     node's content is the union of what its leaves need and nothing
     more; leaves pick their filter round-robin, giving the sharing a
     star cannot exploit. *)
  let covers = List.init filters (fun i -> query_of all_depts.(i)) in
  let leaf_queries = List.init n (fun i -> query_of all_depts.(i mod filters)) in
  match Topology.build ~shape ~covers ~leaf_queries backend with
  | Error e -> failwith ("tree-fanout build: " ^ e)
  | Ok t ->
      let build_root = Topology.root_link_bytes t in
      let build_total = participants_bytes t in
      let stream =
        D.Update_stream.create ent
          { D.Update_stream.default_config with seed = cfg.seed + 1 }
      in
      D.Update_stream.steps stream cfg.updates;
      let convergence_rounds =
        match Topology.rounds_to_converge ~max_rounds:12 t with
        | Some r -> r
        | None -> -1
      in
      {
        shape = shape_name shape;
        consumers = n;
        root_sessions = Resync.Master.session_count (Topology.master t);
        build_root_bytes = build_root;
        update_root_bytes = Topology.root_link_bytes t - build_root;
        update_total_bytes = participants_bytes t - build_total;
        convergence_rounds;
      }

let tree_fanout ?(config = default_config) () =
  List.concat_map
    (fun n ->
      [
        run_point config Topology.Star n;
        run_point config (Topology.Tree { arity = config.arity }) n;
      ])
    config.consumers_list

(* --- Latency/staleness sweep ------------------------------------------ *)

type lat_config = {
  lat_consumers : int;
  lat_filters : int;
  lat_arity : int;
  lat_employees : int;
  lat_seed : int;
  lat_poll_every : int;
  lat_update_every : int;
  lat_updates : int;
  lat_link_lo : int;
  lat_link_hi : int;
  lat_drop_rate : float;
  lat_horizon : int;
}

let lat_default_config =
  {
    lat_consumers = 48;
    lat_filters = 8;
    lat_arity = 4;
    lat_employees = 2000;
    lat_seed = 7;
    lat_poll_every = 50;
    lat_update_every = 20;
    lat_updates = 40;
    lat_link_lo = 2;
    lat_link_hi = 8;
    lat_drop_rate = 0.2;
    lat_horizon = 1600;
  }

let lat_smoke_config =
  {
    lat_consumers = 12;
    lat_filters = 4;
    lat_arity = 2;
    lat_employees = 400;
    lat_seed = 7;
    lat_poll_every = 40;
    lat_update_every = 20;
    lat_updates = 12;
    lat_link_lo = 2;
    lat_link_hi = 8;
    lat_drop_rate = 0.2;
    lat_horizon = 700;
  }

type lat_point = {
  lp_shape : string;
  lp_faults : string;
  lp_polls : int;
  lp_resp_p50 : int;
  lp_resp_p90 : int;
  lp_resp_p99 : int;
  lp_resp_max : int;
  lp_stale_samples : int;
  lp_stale_censored : int;
  lp_stale_mean : int;
  lp_stale_p50 : int;
  lp_stale_p90 : int;
  lp_stale_p99 : int;
  lp_stale_max : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1)))))

let summarize samples =
  let arr = Array.of_list samples in
  Array.sort compare arr;
  ( percentile arr 0.5,
    percentile arr 0.9,
    percentile arr 0.99,
    if Array.length arr = 0 then 0 else arr.(Array.length arr - 1) )

let run_lat_point cfg shape ~lossy =
  let module Sim = Ldap_sim.Engine in
  let ent = enterprise { default_config with seed = cfg.lat_seed; employees = cfg.lat_employees } in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = min cfg.lat_filters (Array.length all_depts) in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
  in
  let covers = List.init filters (fun i -> query_of all_depts.(i)) in
  let leaf_queries =
    List.init cfg.lat_consumers (fun i -> query_of all_depts.(i mod filters))
  in
  (* Faults stay muted during the synchronous build phase so both
     variants start from an identical, fully fetched topology; the roll
     consumes no PRNG draws while muted, keeping runs reproducible. *)
  let faults_active = ref false in
  let fault_prng = D.Prng.create (cfg.lat_seed + 3) in
  let faults =
    if not lossy then None
    else
      Some
        (Network.Faults.create
           ~drop_request:(cfg.lat_drop_rate /. 2.0)
           ~drop_reply:(cfg.lat_drop_rate /. 2.0)
           ~roll:(fun () ->
             if !faults_active then D.Prng.float fault_prng 1.0 else 1.0)
           ())
  in
  match Topology.build ?faults ~shape ~covers ~leaf_queries backend with
  | Error e -> failwith ("latency-staleness build: " ^ e)
  | Ok t ->
      (* The engine attaches only after the build: all fetches above ran
         immediately at time 0, and from here on every exchange costs
         per-link latency in virtual time. *)
      let engine = Sim.create ~seed:(cfg.lat_seed + 2) () in
      let net = Topology.network t in
      Network.attach_engine net engine;
      Network.set_default_latency net
        (Ldap_sim.Latency.Uniform { lo = cfg.lat_link_lo; hi = cfg.lat_link_hi });
      faults_active := true;
      (* Update stream: one committed update every [lat_update_every]
         ticks, each recording (CSN, commit time) for the staleness
         match below. *)
      let stream =
        D.Update_stream.create ent
          { D.Update_stream.default_config with seed = cfg.lat_seed + 1 }
      in
      let update_times = ref [] in
      let rec update_tick remaining =
        if remaining > 0 then
          Sim.after engine ~delay:cfg.lat_update_every (fun () ->
              D.Update_stream.steps stream 1;
              update_times :=
                (Csn.to_int (Backend.csn backend), Sim.now engine) :: !update_times;
              update_tick (remaining - 1))
      in
      update_tick cfg.lat_updates;
      (* Poll loops: per-leaf response times, and an ack record whenever
         a completed poll advances the leaf's acknowledged CSN. *)
      let resp_samples = ref [] in
      let last_acked = Hashtbl.create (max 4 cfg.lat_consumers) in
      let ack_events = ref [] in
      let on_leaf_poll leaf ~start ~finish =
        resp_samples := (finish - start) :: !resp_samples;
        let name = Leaf.name leaf in
        let csn = Csn.to_int (Leaf.acked_csn leaf) in
        let prev = Option.value ~default:(-1) (Hashtbl.find_opt last_acked name) in
        if csn > prev then begin
          Hashtbl.replace last_acked name csn;
          ack_events := (name, csn, finish) :: !ack_events
        end
      in
      Topology.drive_events ~on_leaf_poll t engine ~poll_every:cfg.lat_poll_every
        ~until:cfg.lat_horizon;
      Sim.run engine;
      (* Staleness: for each committed update and each leaf, the virtual
         time from commit until the leaf first acknowledged a CSN at or
         past the update's.  Updates never covered within the horizon
         are counted censored rather than sampled. *)
      let updates_chrono = List.rev !update_times in
      let stale_samples = ref [] in
      let censored = ref 0 in
      List.iter
        (fun leaf ->
          let name = Leaf.name leaf in
          let acks =
            List.rev
              (List.filter_map
                 (fun (n, csn, at) -> if n = name then Some (csn, at) else None)
                 !ack_events)
          in
          let rec go updates acks =
            match (updates, acks) with
            | [], _ -> ()
            | rest, [] -> censored := !censored + List.length rest
            | (u_csn, u_t) :: urest, ((a_csn, a_t) :: _ as acks) ->
                if a_csn >= u_csn then begin
                  stale_samples := (a_t - u_t) :: !stale_samples;
                  go urest acks
                end
                else go updates (List.tl acks)
          in
          go updates_chrono acks)
        (Topology.leaves t);
      let resp_p50, resp_p90, resp_p99, resp_max = summarize !resp_samples in
      let stale_p50, stale_p90, stale_p99, stale_max = summarize !stale_samples in
      let stale_mean =
        match !stale_samples with
        | [] -> 0
        | l ->
            int_of_float
              (Float.round
                 (float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)))
      in
      {
        lp_shape = shape_name shape;
        lp_faults = (if lossy then "lossy" else "clean");
        lp_polls = List.length !resp_samples;
        lp_resp_p50 = resp_p50;
        lp_resp_p90 = resp_p90;
        lp_resp_p99 = resp_p99;
        lp_resp_max = resp_max;
        lp_stale_samples = List.length !stale_samples;
        lp_stale_censored = !censored;
        lp_stale_mean = stale_mean;
        lp_stale_p50 = stale_p50;
        lp_stale_p90 = stale_p90;
        lp_stale_p99 = stale_p99;
        lp_stale_max = stale_max;
      }

let latency_staleness ?(config = lat_default_config) () =
  let shapes = [ Topology.Star; Topology.Tree { arity = config.lat_arity } ] in
  List.concat_map
    (fun shape ->
      [ run_lat_point config shape ~lossy:false; run_lat_point config shape ~lossy:true ])
    shapes

let json_of_lat_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shape\": \"%s\", \"faults\": \"%s\", \"polls\": %d, \
            \"response_p50\": %d, \"response_p90\": %d, \"response_p99\": %d, \
            \"response_max\": %d, \"stale_samples\": %d, \"stale_censored\": %d, \
            \"stale_mean\": %d, \"stale_p50\": %d, \"stale_p90\": %d, \
            \"stale_p99\": %d, \"stale_max\": %d}%s\n"
           p.lp_shape p.lp_faults p.lp_polls p.lp_resp_p50 p.lp_resp_p90
           p.lp_resp_p99 p.lp_resp_max p.lp_stale_samples p.lp_stale_censored
           p.lp_stale_mean p.lp_stale_p50 p.lp_stale_p90 p.lp_stale_p99
           p.lp_stale_max
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b

(* --- Crash/restart sweep ---------------------------------------------- *)

type cr_config = {
  cr_consumers : int;
  cr_filters : int;
  cr_employees : int;
  cr_seed : int;
  cr_poll_every : int;
  cr_update_every : int;
  cr_updates_before : int;
  cr_updates_after : int;
  cr_crash_fraction : float;
  cr_horizon : int;
  cr_corruptions : int;
}

let cr_default_config =
  {
    cr_consumers = 24;
    cr_filters = 12;
    cr_employees = 1200;
    cr_seed = 7;
    cr_poll_every = 40;
    cr_update_every = 20;
    cr_updates_before = 20;
    cr_updates_after = 40;
    cr_crash_fraction = 0.25;
    cr_horizon = 2000;
    cr_corruptions = 40;
  }

let cr_smoke_config =
  {
    cr_consumers = 8;
    cr_filters = 3;
    cr_employees = 300;
    cr_seed = 7;
    cr_poll_every = 40;
    cr_update_every = 20;
    cr_updates_before = 6;
    cr_updates_after = 6;
    cr_crash_fraction = 0.25;
    cr_horizon = 900;
    cr_corruptions = 12;
  }

type cr_mode = Durable | Durable_torn | Cold | Reparent

let cr_mode_name = function
  | Durable -> "durable"
  | Durable_torn -> "durable-torn"
  | Cold -> "cold"
  | Reparent -> "reparent"

type cr_point = {
  cp_mode : string;
  cp_affected : int;
  cp_resync_bytes : int;
  cp_replayed : int;
  cp_truncated : int;
  cp_recover_ticks_mean : int;
  cp_recover_ticks_max : int;
  cp_converged : int;
}

let run_cr_point cfg mode =
  let module Sim = Ldap_sim.Engine in
  let ent =
    enterprise { default_config with seed = cfg.cr_seed; employees = cfg.cr_employees }
  in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let filters = min cfg.cr_filters (Array.length all_depts) in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" d))
  in
  let leaf_queries =
    List.init cfg.cr_consumers (fun i -> query_of all_depts.(i mod filters))
  in
  let affected =
    let n =
      max 1
        (int_of_float
           (Float.round (cfg.cr_crash_fraction *. float_of_int cfg.cr_consumers)))
    in
    (* Matches the builder's leaf naming (leaf1, leaf2, ...). *)
    List.init n (fun i -> Printf.sprintf "leaf%d" (i + 1))
  in
  let is_affected name = List.mem name affected in
  let t =
    match mode with
    | Reparent ->
        (* The reparent baseline is PR 3's heal: the affected leaves
           sit under a relay node that dies at crash time, so they miss
           the same updates the crashed leaves of the other modes miss,
           and their recovery is cookie-translation plus a degraded
           resync from the root. *)
        let covers = List.init filters (fun i -> query_of all_depts.(i)) in
        let t = Topology.create backend in
        (match
           Topology.add_node t ~name:"relay" ~parent:(Topology.root t) ~covers
         with
        | Ok _ -> ()
        | Error e -> failwith ("crash-restart relay: " ^ e));
        List.iteri
          (fun i q ->
            let name = Printf.sprintf "leaf%d" (i + 1) in
            let parent = if is_affected name then "relay" else Topology.root t in
            match Topology.add_leaf t ~name ~parent q with
            | Ok _ -> ()
            | Error e -> failwith ("crash-restart leaf: " ^ e))
          leaf_queries;
        t
    | Durable | Durable_torn | Cold -> (
        match
          Topology.build ~shape:Topology.Star ~covers:[] ~leaf_queries backend
        with
        | Error e -> failwith ("crash-restart build: " ^ e)
        | Ok t -> t)
  in
  (* Durable variants: every leaf journals to its own medium.  The
         clean variant fsyncs each record, so a crash loses nothing;
         the torn variant syncs only at checkpoints and every crash
         tears the unsynced journal tail (the classic partial-write),
         which recovery must truncate. *)
      let fault_prng = D.Prng.create (cfg.cr_seed + 3) in
      (match mode with
      | Durable -> Topology.enable_durability ~sync:true t
      | Durable_torn ->
          let faults =
            Ldap_store.Medium.Faults.create ~torn_tail:1.0
              ~roll:(fun () -> D.Prng.float fault_prng 1.0)
              ()
          in
          Topology.enable_durability ~faults ~sync:false t;
          Topology.checkpoint_leaves t
      | Cold | Reparent -> ());
      let engine = Sim.create ~seed:(cfg.cr_seed + 2) () in
      let net = Topology.network t in
      Network.attach_engine net engine;
      Network.set_default_latency net (Ldap_sim.Latency.Uniform { lo = 2; hi = 8 });
      let stream =
        D.Update_stream.create ent
          { D.Update_stream.default_config with seed = cfg.cr_seed + 1 }
      in
      let total_updates = cfg.cr_updates_before + cfg.cr_updates_after in
      let rec update_tick remaining =
        if remaining > 0 then
          Sim.after engine ~delay:cfg.cr_update_every (fun () ->
              D.Update_stream.steps stream 1;
              update_tick (remaining - 1))
      in
      update_tick total_updates;
      let crash_time = cfg.cr_updates_before * cfg.cr_update_every in
      let restart_time = (total_updates + 1) * cfg.cr_update_every in
      (* Bytes already paid by an affected leaf when its recovery
         starts; resync bytes are what it pays on top of this.  Crash
         modes restart with a fresh leaf (baseline 0); reparent keeps
         the leaf object and its stats. *)
      let baselines = Hashtbl.create 8 in
      let replayed = ref 0 in
      let truncations = ref 0 in
      let restart_failed = ref false in
      (match mode with
      | Reparent ->
          Sim.schedule engine ~time:crash_time (fun () ->
              List.iter
                (fun node ->
                  if Node.host node = "relay" then Topology.kill_node t node)
                (Topology.nodes t))
      | Durable | Durable_torn | Cold ->
          Sim.schedule engine ~time:crash_time (fun () ->
              List.iter
                (fun leaf ->
                  if is_affected (Leaf.name leaf) then Topology.crash_leaf t leaf)
                (Topology.leaves t)));
      let recovered_at = Hashtbl.create 8 in
      Sim.schedule engine ~time:restart_time (fun () ->
          match mode with
          | Reparent ->
              (* No process death: the orphaned leaves keep in-memory
                 content, and heal re-parents them to the root with
                 cookie translation — the next poll resynchronizes
                 degraded from the acknowledged CSN. *)
              List.iter
                (fun leaf ->
                  let name = Leaf.name leaf in
                  if is_affected name then
                    Hashtbl.replace baselines name
                      (upstream_bytes (Leaf.stats leaf)))
                (Topology.leaves t);
              Topology.heal t
          | Durable | Durable_torn | Cold ->
              List.iter
                (fun name ->
                  Hashtbl.replace baselines name 0;
                  match Topology.restart_leaf t ~name with
                  | Ok (_, report) -> (
                      match report with
                      | None -> ()
                      | Some r ->
                          replayed := !replayed + r.R.Filter_replica.meta_replayed;
                          List.iter
                            (fun f ->
                              replayed := !replayed + f.R.Filter_replica.fr_replayed;
                              if f.R.Filter_replica.fr_truncated then incr truncations)
                            r.R.Filter_replica.filters)
                  | Error _ -> restart_failed := true)
                affected);
      (* Convergence watcher: the first completed poll after recovery
         start at which an affected leaf matches the root marks its
         recovery time. *)
      let on_leaf_poll leaf ~start:_ ~finish =
        let name = Leaf.name leaf in
        if
          is_affected name && finish >= restart_time
          && not (Hashtbl.mem recovered_at name)
          && Topology.leaf_converged t leaf
        then Hashtbl.replace recovered_at name finish
      in
      Topology.drive_events ~on_leaf_poll t engine ~poll_every:cfg.cr_poll_every
        ~until:cfg.cr_horizon;
      Sim.run engine;
      if !restart_failed then failwith "crash-restart: a leaf failed to restart";
      let resync_bytes =
        List.fold_left
          (fun acc leaf ->
            let name = Leaf.name leaf in
            if is_affected name then
              acc + upstream_bytes (Leaf.stats leaf)
              - Option.value ~default:0 (Hashtbl.find_opt baselines name)
            else acc)
          0 (Topology.leaves t)
      in
      let recovery_ticks =
        List.filter_map
          (fun name ->
            Option.map (fun at -> at - restart_time) (Hashtbl.find_opt recovered_at name))
          affected
      in
      let mean l =
        match l with
        | [] -> 0
        | _ ->
            int_of_float
              (Float.round
                 (float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)))
      in
      {
        cp_mode = cr_mode_name mode;
        cp_affected = List.length affected;
        cp_resync_bytes = resync_bytes;
        cp_replayed = !replayed;
        cp_truncated = !truncations;
        cp_recover_ticks_mean = mean recovery_ticks;
        cp_recover_ticks_max = List.fold_left max 0 recovery_ticks;
        cp_converged = List.length recovery_ticks;
      }

let crash_restart ?(config = cr_default_config) () =
  List.map (run_cr_point config) [ Durable; Durable_torn; Cold; Reparent ]

(* --- Randomized WAL-corruption sweep ----------------------------------- *)

type corruption_summary = {
  cs_trials : int;
  cs_recovered : int;  (** Recoveries that returned a consumer. *)
  cs_truncated : int;  (** Recoveries that had to cut a torn/corrupt tail. *)
  cs_discarded : int;  (** Recoveries that discarded a stale-generation log. *)
  cs_repaired_merkle : int;  (** Damaged recoveries repaired by Merkle walk. *)
  cs_repaired_cold : int;  (** Damaged recoveries repaired by cold re-fetch. *)
  cs_stale : int;
      (** Trials whose content still diverged from the master after
          recovery completed — forced repair for damaged recoveries, a
          resume poll for clean ones — must be 0: no corruption may
          leave a replica serving stale reads. *)
  cs_panics : int;  (** Recoveries that raised — must be 0. *)
}

let corruption_sweep ?(config = cr_default_config) () =
  (* Grow a reference consumer store — snapshot mid-stream, journal
     records after — then recover from randomly mutilated copies of
     its files: truncated at an arbitrary byte, or with one byte
     flipped.  Whatever the damage, recovery must return (possibly
     with truncation), never raise — and must never leave the replica
     serving stale reads: a damaged recovery (torn or stale WAL) is
     repaired in place by Merkle anti-entropy (cold re-fetch as
     fallback), and a clean one resumes from its durable cookie with
     one poll, exactly the path a restarted replica takes before
     answering queries.  Any trial still divergent afterwards counts
     as stale. *)
  let ent =
    enterprise
      { default_config with seed = config.cr_seed; employees = config.cr_employees }
  in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let all_depts = D.Enterprise.dept_numbers ent in
  let query =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%s)" all_depts.(0)))
  in
  let schema = Backend.schema backend in
  let master = Resync.Master.create backend in
  let consumer = Resync.Consumer.create schema query in
  let medium = Ldap_store.Medium.memory () in
  let store = Ldap_store.Store.create medium ~name:"c" in
  Resync.Consumer.attach_store consumer store;
  let stream =
    D.Update_stream.create ent
      { D.Update_stream.default_config with seed = config.cr_seed + 1 }
  in
  let poll () =
    match Resync.Consumer.sync consumer master with
    | Ok _ -> ()
    | Error e -> failwith ("corruption sweep poll: " ^ e)
  in
  poll ();
  D.Update_stream.steps stream config.cr_updates_before;
  poll ();
  Resync.Consumer.checkpoint consumer;
  D.Update_stream.steps stream config.cr_updates_after;
  poll ();
  let wal = Option.value ~default:"" (Ldap_store.Medium.read medium ~name:"c.wal") in
  let snap = Option.value ~default:"" (Ldap_store.Medium.read medium ~name:"c.snap") in
  let transport = Resync.Transport.loopback master in
  let canon entries =
    List.sort
      (fun a b -> compare (Dn.canonical (Entry.dn a)) (Dn.canonical (Entry.dn b)))
      entries
  in
  let reference = canon (Resync.Content.current backend query) in
  let diverged c =
    let got = canon (Resync.Consumer.entries c) in
    List.length got <> List.length reference
    || not (List.for_all2 Entry.equal got reference)
  in
  let prng = D.Prng.create (config.cr_seed + 5) in
  let recovered = ref 0 and truncated = ref 0 and discarded = ref 0 in
  let repaired_merkle = ref 0 and repaired_cold = ref 0 in
  let stale = ref 0 and panics = ref 0 in
  for _ = 1 to config.cr_corruptions do
    let mutate s =
      if String.length s = 0 then s
      else
        match D.Prng.int prng 3 with
        | 0 -> String.sub s 0 (D.Prng.int prng (String.length s))
        | 1 ->
            let i = D.Prng.int prng (String.length s) in
            let b = Bytes.of_string s in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + D.Prng.int prng 255)));
            Bytes.to_string b
        | _ -> s
    in
    let m = Ldap_store.Medium.memory () in
    let put name s =
      if String.length s > 0 then begin
        Ldap_store.Medium.append m ~name s;
        Ldap_store.Medium.sync m ~name
      end
    in
    (* The snapshot is replaced atomically in real operation, so only
       the WAL gets arbitrary damage; still flip snapshot bytes in a
       third of the trials to check the CRC path. *)
    put "c.wal" (mutate wal);
    put "c.snap" (if D.Prng.int prng 3 = 0 then mutate snap else snap);
    let fresh = Ldap_store.Store.create m ~name:"c" in
    match Resync.Consumer.recover schema query fresh with
    | Ok (c, r) ->
        incr recovered;
        if r.Ldap_store.Store.truncated then incr truncated;
        if r.Ldap_store.Store.stale > 0 then incr discarded;
        (* Close the recovery before the replica serves reads: damaged
           durable state forces an immediate resync (Merkle first,
           cold fallback); clean state resumes from its coherent
           durable cookie with one poll — which also recovers a
           cleanly-lost WAL tail via the master's degraded reply. *)
        let damaged =
          r.Ldap_store.Store.truncated || r.Ldap_store.Store.stale > 0
        in
        (if damaged then
           match
             Resync.Consumer.merkle_sync c transport
               ~host:Resync.Transport.loopback_host
           with
           | Ok { Ldap_antientropy.Exchange.converged = true; _ } ->
               incr repaired_merkle
           | Ok _ | Error _ ->
               incr repaired_cold;
               Resync.Consumer.set_cookie c None;
               ignore
                 (Resync.Consumer.sync_over c transport
                    ~host:Resync.Transport.loopback_host)
         else
           ignore
             (Resync.Consumer.sync_over c transport
                ~host:Resync.Transport.loopback_host));
        if diverged c then incr stale
    | Error _ -> ()
    | exception _ -> incr panics
  done;
  {
    cs_trials = config.cr_corruptions;
    cs_recovered = !recovered;
    cs_truncated = !truncated;
    cs_discarded = !discarded;
    cs_repaired_merkle = !repaired_merkle;
    cs_repaired_cold = !repaired_cold;
    cs_stale = !stale;
    cs_panics = !panics;
  }

let json_of_cr_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"mode\": \"%s\", \"affected\": %d, \"resync_bytes\": %d, \
            \"replayed\": %d, \"truncated\": %d, \"recover_ticks_mean\": %d, \
            \"recover_ticks_max\": %d, \"converged\": %d}%s\n"
           p.cp_mode p.cp_affected p.cp_resync_bytes p.cp_replayed p.cp_truncated
           p.cp_recover_ticks_mean p.cp_recover_ticks_max p.cp_converged
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b

let json_of_corruption c =
  Printf.sprintf
    "{\"trials\": %d, \"recovered\": %d, \"truncated\": %d, \"discarded\": %d, \
     \"repaired_merkle\": %d, \"repaired_cold\": %d, \"stale\": %d, \
     \"panics\": %d}"
    c.cs_trials c.cs_recovered c.cs_truncated c.cs_discarded c.cs_repaired_merkle
    c.cs_repaired_cold c.cs_stale c.cs_panics

(* --- Anti-entropy drift sweep ------------------------------------------ *)

type ae_config = {
  ae_consumers : int;
  ae_employees : int;
  ae_seed : int;
  ae_poll_every : int;
  ae_crash_fraction : float;
  ae_drifts : float list;
  ae_horizon : int;
}

let ae_default_config =
  {
    ae_consumers = 16;
    ae_employees = 1200;
    ae_seed = 7;
    ae_poll_every = 40;
    ae_crash_fraction = 0.25;
    ae_drifts = [ 0.0; 0.05; 0.1; 0.25; 0.5 ];
    ae_horizon = 1200;
  }

let ae_smoke_config =
  {
    ae_consumers = 8;
    ae_employees = 400;
    ae_seed = 7;
    ae_poll_every = 40;
    ae_crash_fraction = 0.25;
    ae_drifts = [ 0.0; 0.1; 0.5 ];
    ae_horizon = 800;
  }

type ae_point = {
  ap_drift : float;
  ap_updates : int;  (** Updates the downed replicas missed. *)
  ap_affected : int;
  ap_merkle_bytes : int;
  ap_cold_bytes : int;
  ap_merkle_converged : int;
  ap_cold_converged : int;
  ap_merkle_ticks_max : int;
  ap_cold_ticks_max : int;
}

(* One drifted crash/restart scenario: a star of division replicas with
   unsynced durability, checkpointed after the build.  A fraction of
   the leaves crashes {e before} a burst of [round (drift * employees)]
   updates lands at the root, so their durable checkpoints miss exactly
   that drift; they then restart in the given mode — [Merkle] walks the
   hash tree and ships only drifted segments, [Cold] re-fetches
   everything — and the bytes each affected leaf pays to rejoin are
   captured at restart time, before regular polling resumes. *)
let run_ae_mode cfg drift mode =
  let module Sim = Ldap_sim.Engine in
  let ent =
    enterprise
      { default_config with seed = cfg.ae_seed; employees = cfg.ae_employees }
  in
  let backend = D.Enterprise.backend ent in
  let base = D.Enterprise.root_dn ent in
  let query_of d =
    Query.make ~base
      (Filter.of_string_exn (Printf.sprintf "(departmentNumber=%02d*)" d))
  in
  (* Division-prefix filters — department numbers are
     <division><dept>, so the prefix selects a whole division's
     employees and department entries — give each replica a
     substantial slice (a quarter of the directory), measuring the
     hash-tree overhead against a realistic content size unlike the
     tiny single-department filters. *)
  let divisions = 4 in
  let leaf_queries =
    List.init cfg.ae_consumers (fun i -> query_of (i mod divisions))
  in
  let affected =
    let n =
      max 1
        (int_of_float
           (Float.round (cfg.ae_crash_fraction *. float_of_int cfg.ae_consumers)))
    in
    List.init n (fun i -> Printf.sprintf "leaf%d" (i + 1))
  in
  let is_affected name = List.mem name affected in
  let t =
    match Topology.build ~shape:Topology.Star ~covers:[] ~leaf_queries backend with
    | Error e -> failwith ("anti-entropy build: " ^ e)
    | Ok t -> t
  in
  (* Unsynced durability: only checkpoints survive a crash, so the
     downed replicas recover exactly their pre-drift checkpoint. *)
  Topology.enable_durability ~sync:false t;
  Topology.checkpoint_leaves t;
  let engine = Sim.create ~seed:(cfg.ae_seed + 2) () in
  let net = Topology.network t in
  Network.attach_engine net engine;
  Network.set_default_latency net (Ldap_sim.Latency.Uniform { lo = 2; hi = 8 });
  let updates =
    int_of_float (Float.round (drift *. float_of_int cfg.ae_employees))
  in
  let stream =
    D.Update_stream.create ent
      { D.Update_stream.default_config with seed = cfg.ae_seed + 1 }
  in
  let crash_time = 10 in
  let drift_time = 20 in
  let restart_time = 30 in
  Sim.schedule engine ~time:crash_time (fun () ->
      List.iter
        (fun leaf ->
          if is_affected (Leaf.name leaf) then Topology.crash_leaf t leaf)
        (Topology.leaves t));
  Sim.schedule engine ~time:drift_time (fun () ->
      D.Update_stream.steps stream updates);
  let resync_bytes = ref 0 in
  let restart_failed = ref false in
  Sim.schedule engine ~time:restart_time (fun () ->
      List.iter
        (fun name ->
          match Topology.restart_leaf ~mode t ~name with
          | Ok (leaf, _) ->
              (* The Merkle walk (or the cold re-fetch) completes inside
                 the restart, so the leaf's upstream bytes here are
                 exactly its cost to rejoin. *)
              resync_bytes := !resync_bytes + upstream_bytes (Leaf.stats leaf)
          | Error _ -> restart_failed := true)
        affected);
  let recovered_at = Hashtbl.create 8 in
  let on_leaf_poll leaf ~start:_ ~finish =
    let name = Leaf.name leaf in
    if
      is_affected name && finish >= restart_time
      && not (Hashtbl.mem recovered_at name)
      && Topology.leaf_converged t leaf
    then Hashtbl.replace recovered_at name finish
  in
  Topology.drive_events ~on_leaf_poll t engine ~poll_every:cfg.ae_poll_every
    ~until:cfg.ae_horizon;
  Sim.run engine;
  if !restart_failed then failwith "anti-entropy sweep: a leaf failed to restart";
  let ticks =
    List.filter_map
      (fun name ->
        Option.map
          (fun at -> at - restart_time)
          (Hashtbl.find_opt recovered_at name))
      affected
  in
  ( !resync_bytes,
    List.length ticks,
    List.fold_left max 0 ticks,
    List.length affected,
    updates )

let run_ae_point cfg drift =
  let m_bytes, m_conv, m_ticks, affected, updates =
    run_ae_mode cfg drift Topology.Merkle
  in
  let c_bytes, c_conv, c_ticks, _, _ = run_ae_mode cfg drift Topology.Cold in
  {
    ap_drift = drift;
    ap_updates = updates;
    ap_affected = affected;
    ap_merkle_bytes = m_bytes;
    ap_cold_bytes = c_bytes;
    ap_merkle_converged = m_conv;
    ap_cold_converged = c_conv;
    ap_merkle_ticks_max = m_ticks;
    ap_cold_ticks_max = c_ticks;
  }

let anti_entropy ?(config = ae_default_config) () =
  List.map (run_ae_point config) config.ae_drifts

let json_of_ae_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"drift\": %.2f, \"updates\": %d, \"affected\": %d, \
            \"merkle_bytes\": %d, \"cold_bytes\": %d, \"merkle_converged\": %d, \
            \"cold_converged\": %d, \"merkle_ticks_max\": %d, \
            \"cold_ticks_max\": %d}%s\n"
           p.ap_drift p.ap_updates p.ap_affected p.ap_merkle_bytes p.ap_cold_bytes
           p.ap_merkle_converged p.ap_cold_converged p.ap_merkle_ticks_max
           p.ap_cold_ticks_max
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b

let json_of_points points =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i p ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shape\": \"%s\", \"consumers\": %d, \"root_sessions\": %d, \
            \"build_root_bytes\": %d, \"update_root_bytes\": %d, \
            \"update_total_bytes\": %d, \"convergence_rounds\": %d}%s\n"
           p.shape p.consumers p.root_sessions p.build_root_bytes
           p.update_root_bytes p.update_total_bytes p.convergence_rounds
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string b "  ]";
  Buffer.contents b
