open Ldap
module R = Ldap_replication
module Resync = Ldap_resync

type t = { replica : R.Filter_replica.t; name : string }

let create ?(cache_capacity = 0) transport ~name ~parent =
  {
    replica =
      R.Filter_replica.create_over ~cache_capacity ~host:name transport
        ~master_host:parent;
    name;
  }

let replica t = t.replica
let name t = t.name
let parent t = R.Filter_replica.master_host t.replica
let stats t = R.Filter_replica.stats t.replica

let reparent t ~parent = R.Filter_replica.retarget t.replica ~master_host:parent

let rec subscribe ?(max_referrals = 4) t q =
  match R.Filter_replica.install_filter t.replica q with
  | Ok () -> Ok ()
  | Error msg -> (
      match Node.referral_of_error msg with
      | None -> Error msg
      | Some url when max_referrals = 0 -> Error ("referral loop at " ^ url)
      | Some url -> (
          (* The parent cannot prove the subscription contained: chase
             the referral one tier up, moving the whole leaf — every
             other filter it holds stays admissible there, since
             admissibility only widens toward the root. *)
          match Referral.parse url with
          | Error e -> Error e
          | Ok { Referral.host; _ } ->
              reparent t ~parent:host;
              subscribe ~max_referrals:(max_referrals - 1) t q))

let sync t = R.Filter_replica.sync t.replica

let sync_async t k = R.Filter_replica.sync_async t.replica k

let merkle_sync t = R.Filter_replica.merkle_sync_all t.replica

let subscriptions t = R.Filter_replica.stored_filters t.replica

let acked_csn t =
  (* The CSN this leaf has acknowledged across every subscription: the
     minimum of its cookies' CSNs (a leaf is only as fresh as its
     stalest filter).  [Csn.zero] before any successful exchange. *)
  List.fold_left
    (fun acc q ->
      match R.Filter_replica.consumer_for t.replica q with
      | None -> Csn.zero
      | Some c -> (
          match Resync.Consumer.cookie c with
          | None -> Csn.zero
          | Some cookie -> (
              match Resync.Protocol.parse_cookie cookie with
              | Some (_, csn) -> if Csn.( < ) csn acc then csn else acc
              | None -> Csn.zero)))
    (Csn.of_int max_int) (subscriptions t)
  |> fun m -> if Csn.equal m (Csn.of_int max_int) then Csn.zero else m

let content t q =
  match R.Filter_replica.consumer_for t.replica q with
  | Some c -> Resync.Consumer.entries c
  | None -> []

let content_seq t q =
  match R.Filter_replica.consumer_for t.replica q with
  | Some c -> Resync.Consumer.entries_seq c
  | None -> Seq.empty

(* --- Durability ------------------------------------------------------ *)

let attach_store ?sync t medium =
  R.Filter_replica.attach_store ?sync t.replica medium ~prefix:t.name

let checkpoint t = R.Filter_replica.checkpoint t.replica
let detach_store t = R.Filter_replica.detach_store t.replica

let recover ?cache_capacity ?sync transport ~name ~parent medium =
  match
    R.Filter_replica.recover_over ?cache_capacity ?sync ~host:name transport
      ~master_host:parent medium ~prefix:name
  with
  | Ok (replica, report) -> Ok ({ replica; name }, report)
  | Error _ as e -> e
