(** Hash tree over replica content, keyed by canonical DN.

    The tree is flat-array Merkle in the tictac-AAE shape: every entry
    hashes to 64 bits over a canonical rendering (canonical DN, then
    attributes sorted by name with sorted values), lands in the segment
    its DN hashes to, and each segment's hash is the XOR of its
    members' hashes.  Branches XOR runs of [branch_factor] segments
    and the root XORs everything — so the root is independent of the
    segment count, any two trees over identical content agree at the
    root, and a single-entry mutation flips exactly one
    segment-branch-root path.

    Trees are cheap to build ([of_entries] is one pass) and are meant
    to be computed lazily, per exchange, on whichever side serves. *)

open Ldap

(** Tree shape: [segments] leaf buckets grouped into branches of
    [branch_factor] segments each. *)
type config = { segments : int; branch_factor : int }

val default_config : config
(** 256 segments, 16 per branch: 16 branch hashes at the middle tier. *)

val branch_count : config -> int
(** Number of branch-tier hashes, [ceil (segments / branch_factor)]. *)

val depth : config -> int
(** Tiers of the exchange walk (root, branches, segments) — constant 3
    for this flat-array shape. *)

val entry_hash : Entry.t -> int64
(** 64-bit content hash of one entry over its canonical rendering;
    equal entries hash equal regardless of attribute insertion order. *)

val segment_of_dn : config -> Dn.t -> int
(** The segment an entry with this DN occupies.  Keyed by the DN alone
    so attribute mutations never move an entry between segments. *)

type t

val of_seq : ?config:config -> Entry.t Seq.t -> t
(** Builds the tree over the given content in one streaming pass
    (default {!default_config}) — no list copy of the content is ever
    materialized, so building over a 500k-entry store costs the
    segment array plus the iteration. *)

val of_entries : ?config:config -> Entry.t list -> t
(** {!of_seq} over a list. *)

val config : t -> config
(** The shape this tree was built with. *)

val root : t -> int64
(** Root hash: XOR of every entry hash, independent of the shape. *)

val branch : t -> int -> int64
(** One branch-tier hash.
    @raise Invalid_argument when the index is out of range. *)

val branches : t -> (int * int64) list
(** All branch-tier hashes, in index order. *)

val segment : t -> int -> int64
(** One segment hash.
    @raise Invalid_argument when the index is out of range. *)

val segments_of_branch : config -> int -> int list
(** The segment indices a branch covers, in order.
    @raise Invalid_argument when the branch index is out of range. *)

val diff_branches : t -> (int * int64) list -> int list
(** Branch indices whose remote hash differs from this tree's. *)

val diff_segments : t -> (int * int64) list -> int list
(** Segment indices whose remote hash differs from this tree's. *)
