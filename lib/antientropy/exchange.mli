(** Merkle anti-entropy exchange: the request/reply protocol walked
    over a {!Tree} and the consumer-side reconciliation driver.

    The exchange is a four-message walk, cheapest tier first: compare
    roots, then branch hashes, then the segment hashes of differing
    branches, then fetch the entries of differing segments.  Only the
    final fetch ships entries, so the wire cost scales with the diff
    while every earlier message costs a handful of hashes.  Requests
    carry the consumer's tree shape, making the consumer authoritative
    over segmentation; the serving side rebuilds its tree lazily per
    request from whatever content function it was given — a root
    master evaluates the replica's filter over its backend, an
    intermediate node reads its own replica content. *)

open Ldap

(** One walk step.  Every shape-dependent request embeds the
    consumer's {!Tree.config}. *)
type request =
  | Root  (** Compare root hashes. *)
  | Branches of Tree.config  (** Fetch all branch-tier hashes. *)
  | Segments of Tree.config * int list
      (** Fetch the segment hashes of the listed branches. *)
  | Fetch of Tree.config * int list
      (** Ship the entries of the listed segments, plus a resume
          cookie minted at serve time. *)

type reply =
  | Root_hash of int64
  | Branch_hashes of (int * int64) list
  | Segment_hashes of (int * int64) list
  | Segment_entries of { entries : Entry.t list; cookie : string option }

val request_bytes : request -> int
(** Modelled wire cost of a request (message framing + indices). *)

val reply_bytes : reply -> int
(** Modelled wire cost of a reply (framing + hashes, or + entries). *)

val serve :
  content:(unit -> Entry.t Seq.t) ->
  cookie:(unit -> string option) ->
  request ->
  reply
(** Answers one walk step from [content], re-read lazily per request
    as a streaming sequence — hashing never materializes a list copy
    of the serving side's content.
    [cookie] is consulted only on [Fetch]: it should mint (or reuse) a
    ReSync session pinned at the serving side's current CSN, so the
    consumer that installs the shipped entries can resume incremental
    polling afterwards.  The cookie is minted before the entries are
    read, so installing both can never leave the cookie ahead of the
    content it arrived with. *)

(** What one reconciliation did, for reports and byte accounting. *)
type report = {
  rounds : int;  (** Walks performed, including the verifying one. *)
  depth : int;  (** Tree tiers walked ({!Tree.depth}). *)
  segments_total : int;  (** Segments in the configured shape. *)
  segments_compared : int;  (** Segment hashes received and compared. *)
  segments_shipped : int;  (** Segments whose entries were fetched. *)
  entries_shipped : int;  (** Entries received across all fetches. *)
  bytes_sent : int;  (** Modelled request bytes. *)
  bytes_received : int;  (** Modelled reply bytes. *)
  converged : bool;
      (** The final root comparison matched.  [false] means the server
          drifted faster than [max_rounds] walks could chase — the
          caller should fall back to a cold resynchronization. *)
}

val reconcile :
  ?config:Tree.config ->
  ?max_rounds:int ->
  local:(unit -> Entry.t Seq.t) ->
  apply:
    (upserts:Entry.t list -> deletes:Dn.t list -> cookie:string option -> unit) ->
  rpc:(request -> (reply, string) result) ->
  unit ->
  (report, string) result
(** Drives the walk against a server reached through [rpc] until the
    roots match or [max_rounds] (default 4) walks are spent.  Each
    round rebuilds the local tree from [local ()], fetches the entries
    of differing segments and hands them to [apply] together with the
    DNs to delete (local entries in shipped segments the server did
    not return) and the server's resume cookie; the following round's
    root comparison verifies the application converged — closing the
    race where updates land upstream between segment comparison and
    fetch.  Errors from [rpc] (transport loss, server rejection)
    abort the reconciliation. *)
