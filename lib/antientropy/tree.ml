open Ldap

type config = { segments : int; branch_factor : int }

let default_config = { segments = 256; branch_factor = 16 }

let check_config cfg =
  if cfg.segments <= 0 || cfg.branch_factor <= 0 then
    invalid_arg "Antientropy.Tree: segments and branch_factor must be positive"

let branch_count cfg =
  check_config cfg;
  (cfg.segments + cfg.branch_factor - 1) / cfg.branch_factor

(* Root, branch tier, segment tier. *)
let depth _ = 3

(* --- Entry hashing ----------------------------------------------------
   64-bit hashes taken from the leading bytes of an MD5 digest over a
   canonical rendering: DNs in canonical form, attributes sorted by
   name with values sorted within each attribute.  Entry.attributes
   preserves insertion order, so sorting here is what makes two
   replicas holding the same logical entry agree on its hash. *)

let hash64 s =
  Bytes.get_int64_be (Bytes.unsafe_of_string (Digest.string s)) 0

(* Memoized on the entry: rebuilding trees across anti-entropy rounds
   re-hashes only entries mutated since the last round.  The canonical
   rendering lives with {!Entry} so snapshot-diff cursors share both
   the definition and the per-record memo. *)
let entry_hash = Entry.content_hash64

(* The segment is keyed by the DN alone: mutating an entry's attributes
   changes its hash but never moves it between segments, so a single
   mutation flips exactly one segment-to-root path. *)
let segment_of_dn cfg dn =
  check_config cfg;
  Int64.to_int (hash64 (Dn.canonical dn)) land max_int mod cfg.segments

(* --- Tree construction ------------------------------------------------
   Segment hash = XOR of member entry hashes: order-independent and
   incrementally mergeable (the tictac-AAE combination).  Branch and
   root hashes XOR their children, so the root is independent of the
   segment count — two trees over identical content agree at the root
   whatever their shapes. *)

type t = { config : config; seg : int64 array }

let config t = t.config

let of_seq ?(config = default_config) entries =
  check_config config;
  let seg = Array.make config.segments 0L in
  Seq.iter
    (fun e ->
      let i = segment_of_dn config (Entry.dn e) in
      seg.(i) <- Int64.logxor seg.(i) (entry_hash e))
    entries;
  { config; seg }

let of_entries ?config entries = of_seq ?config (List.to_seq entries)

let segment t i =
  if i < 0 || i >= t.config.segments then
    invalid_arg "Antientropy.Tree.segment: index out of range";
  t.seg.(i)

let segments_of_branch cfg b =
  let n = branch_count cfg in
  if b < 0 || b >= n then
    invalid_arg "Antientropy.Tree.segments_of_branch: index out of range";
  let lo = b * cfg.branch_factor in
  let hi = min cfg.segments (lo + cfg.branch_factor) in
  List.init (hi - lo) (fun i -> lo + i)

let branch t b =
  List.fold_left
    (fun acc i -> Int64.logxor acc t.seg.(i))
    0L
    (segments_of_branch t.config b)

let branches t = List.init (branch_count t.config) (fun b -> (b, branch t b))

let root t = Array.fold_left Int64.logxor 0L t.seg

(* Indices whose remote hash differs from the local tree's.  The remote
   list is complete for the tier (or the requested branches), so only
   listed indices can differ. *)
let diff_branches t remote =
  List.filter_map
    (fun (b, h) -> if Int64.equal (branch t b) h then None else Some b)
    remote

let diff_segments t remote =
  List.filter_map
    (fun (i, h) -> if Int64.equal (segment t i) h then None else Some i)
    remote
