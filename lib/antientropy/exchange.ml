open Ldap

(* Requests carry the consumer's tree shape so both sides always hash
   into the same segmentation, whatever the server's default. *)
type request =
  | Root
  | Branches of Tree.config
  | Segments of Tree.config * int list
  | Fetch of Tree.config * int list

type reply =
  | Root_hash of int64
  | Branch_hashes of (int * int64) list
  | Segment_hashes of (int * int64) list
  | Segment_entries of { entries : Entry.t list; cookie : string option }

(* --- Modelled wire costs ----------------------------------------------
   Same style as Protocol.request_bytes/reply_bytes: LDAP message
   framing plus the payload.  Hashes are 8 bytes, indices 4, and the
   tree shape 4 (two small integers). *)

let hash_bytes = 8
let index_bytes = 4
let config_bytes = 4

let cookie_bytes = function Some c -> String.length c | None -> 0

let request_bytes = function
  | Root -> Ber.message_overhead + 1
  | Branches _ -> Ber.message_overhead + 1 + config_bytes
  | Segments (_, l) | Fetch (_, l) ->
      Ber.message_overhead + 1 + config_bytes + (index_bytes * List.length l)

let reply_bytes = function
  | Root_hash _ -> Ber.message_overhead + hash_bytes
  | Branch_hashes l | Segment_hashes l ->
      Ber.message_overhead + ((index_bytes + hash_bytes) * List.length l)
  | Segment_entries { entries; cookie } ->
      Ber.message_overhead
      + List.fold_left (fun acc e -> acc + Ber.entry_size e) 0 entries
      + cookie_bytes cookie

(* --- Serving ---------------------------------------------------------- *)

let in_segments cfg sids dn =
  let s = Tree.segment_of_dn cfg dn in
  List.mem s sids

let serve ~content ~cookie request =
  match request with
  | Root -> Root_hash (Tree.root (Tree.of_seq (content ())))
  | Branches cfg -> Branch_hashes (Tree.branches (Tree.of_seq ~config:cfg (content ())))
  | Segments (cfg, bids) ->
      let tree = Tree.of_seq ~config:cfg (content ()) in
      Segment_hashes
        (List.concat_map
           (fun b ->
             List.map (fun s -> (s, Tree.segment tree s)) (Tree.segments_of_branch cfg b))
           bids)
  | Fetch (cfg, sids) ->
      (* The cookie is minted first: it pins the serving side's current
         synchronization point, and the entries shipped are the content
         at (or past) that point, so a consumer installing both cannot
         hold a cookie ahead of its content. *)
      let cookie = cookie () in
      let entries =
        List.of_seq
          (Seq.filter (fun e -> in_segments cfg sids (Entry.dn e)) (content ()))
      in
      Segment_entries { entries; cookie }

(* --- Reconciliation driver -------------------------------------------- *)

type report = {
  rounds : int;
  depth : int;
  segments_total : int;
  segments_compared : int;
  segments_shipped : int;
  entries_shipped : int;
  bytes_sent : int;
  bytes_received : int;
  converged : bool;
}

let default_max_rounds = 4

let reconcile ?(config = Tree.default_config) ?(max_rounds = default_max_rounds)
    ~local ~apply ~rpc () =
  let ( let* ) = Result.bind in
  let compared = ref 0 in
  let shipped = ref 0 in
  let entries_shipped = ref 0 in
  let sent = ref 0 in
  let received = ref 0 in
  let send req =
    sent := !sent + request_bytes req;
    let* reply = rpc req in
    received := !received + reply_bytes reply;
    Ok reply
  in
  let make_report rounds converged =
    {
      rounds;
      depth = Tree.depth config;
      segments_total = config.Tree.segments;
      segments_compared = !compared;
      segments_shipped = !shipped;
      entries_shipped = !entries_shipped;
      bytes_sent = !sent;
      bytes_received = !received;
      converged;
    }
  in
  (* Each round walks root -> branches -> segments -> fetch against the
     current local content, applies the differing segments, then loops:
     the next round's root comparison verifies convergence.  Updates
     landing upstream mid-walk make a round ship a cookie ahead of
     already-compared segments — the re-walk closes exactly that
     window, and a server drifting faster than [max_rounds] rounds can
     chase is reported unconverged so the caller can fall back cold. *)
  let rec round r =
    if r > max_rounds then Ok (make_report (r - 1) false)
    else
      let tree = Tree.of_seq ~config (local ()) in
      let* reply = send Root in
      match reply with
      | Root_hash h when Int64.equal h (Tree.root tree) ->
          Ok (make_report r true)
      | Root_hash _ -> (
          let* reply = send (Branches config) in
          match reply with
          | Branch_hashes remote -> (
              match Tree.diff_branches tree remote with
              | [] -> round (r + 1)
              | bids -> (
                  let* reply = send (Segments (config, bids)) in
                  match reply with
                  | Segment_hashes remote -> (
                      compared := !compared + List.length remote;
                      match Tree.diff_segments tree remote with
                      | [] -> round (r + 1)
                      | sids -> (
                          let* reply = send (Fetch (config, sids)) in
                          match reply with
                          | Segment_entries { entries; cookie } ->
                              shipped := !shipped + List.length sids;
                              entries_shipped :=
                                !entries_shipped + List.length entries;
                              let fetched =
                                List.fold_left
                                  (fun acc e -> Dn.Set.add (Entry.dn e) acc)
                                  Dn.Set.empty entries
                              in
                              let deletes =
                                Seq.filter_map
                                  (fun e ->
                                    let dn = Entry.dn e in
                                    if
                                      in_segments config sids dn
                                      && not (Dn.Set.mem dn fetched)
                                    then Some dn
                                    else None)
                                  (local ())
                                |> List.of_seq
                              in
                              apply ~upserts:entries ~deletes ~cookie;
                              round (r + 1)
                          | _ -> Error "anti-entropy: unexpected fetch reply"))
                  | _ -> Error "anti-entropy: unexpected segment reply"))
          | _ -> Error "anti-entropy: unexpected branch reply")
      | _ -> Error "anti-entropy: unexpected root reply"
  in
  round 1
