type syntax = Case_ignore | Case_exact | Integer | Telephone

let syntax_to_string = function
  | Case_ignore -> "caseIgnore"
  | Case_exact -> "caseExact"
  | Integer -> "integer"
  | Telephone -> "telephone"

let syntax_of_string s =
  match String.lowercase_ascii s with
  | "caseignore" -> Some Case_ignore
  | "caseexact" -> Some Case_exact
  | "integer" -> Some Integer
  | "telephone" -> Some Telephone
  | _ -> None

(* Squash insignificant spaces per the caseIgnore/caseExact matching
   rules: strip leading/trailing spaces, collapse internal runs. *)
let squash_spaces s =
  let b = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      if c = ' ' then (if Buffer.length b > 0 then pending_space := true)
      else begin
        if !pending_space then Buffer.add_char b ' ';
        pending_space := false;
        Buffer.add_char b c
      end)
    s;
  Buffer.contents b

let strip_phone s =
  let b = Buffer.create (String.length s) in
  String.iter (fun c -> if c <> ' ' && c <> '-' then Buffer.add_char b c) s;
  Buffer.contents b

let normalize syntax v =
  match syntax with
  | Case_ignore -> String.lowercase_ascii (squash_spaces v)
  | Case_exact -> squash_spaces v
  | Integer -> String.trim v
  | Telephone -> String.lowercase_ascii (strip_phone v)

let canonical syntax v =
  let n = normalize syntax v in
  match syntax with
  | Integer -> (
      (* [normalize] is not canonical for Integer ("07" and "7" are
         equal but normalize differently); fold parsable values to the
         canonical decimal spelling. *)
      match int_of_string_opt n with Some i -> string_of_int i | None -> n)
  | Case_ignore | Case_exact | Telephone -> n

let compare_integer a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> Int.compare x y
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> String.compare a b

let compare syntax a b =
  let a = normalize syntax a and b = normalize syntax b in
  match syntax with
  | Integer -> compare_integer a b
  | Case_ignore | Case_exact | Telephone -> String.compare a b

let equal syntax a b = compare syntax a b = 0

(* Find [pat] in [s] starting at [from]; return index after the match. *)
let find_from s ~from pat =
  let n = String.length s and m = String.length pat in
  if m = 0 then Some from
  else
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = pat then Some (i + m)
      else go (i + 1)
    in
    go from

let matches_substring syntax ~initial ~any ~final v =
  let v = normalize syntax v in
  let norm p = normalize syntax p in
  let pos, ok_initial =
    match initial with
    | None -> (0, true)
    | Some p ->
        let p = norm p in
        let n = String.length p in
        if String.length v >= n && String.sub v 0 n = p then (n, true)
        else (0, false)
  in
  if not ok_initial then false
  else
    let rec consume pos = function
      | [] -> Some pos
      | p :: rest -> (
          match find_from v ~from:pos (norm p) with
          | None -> None
          | Some pos' -> consume pos' rest)
    in
    match consume pos any with
    | None -> false
    | Some pos -> (
        match final with
        | None -> true
        | Some p ->
            let p = norm p in
            let n = String.length p and vn = String.length v in
            vn - pos >= n && String.sub v (vn - n) n = p)

let successor_of_prefix p =
  let n = String.length p in
  if n = 0 then invalid_arg "Value.successor_of_prefix: empty prefix";
  (* Drop trailing 0xff bytes, then increment the last byte. *)
  let rec last_incrementable i =
    if i < 0 then invalid_arg "Value.successor_of_prefix: all 0xff"
    else if Char.code p.[i] < 0xff then i
    else last_incrementable (i - 1)
  in
  let i = last_incrementable (n - 1) in
  let b = Bytes.of_string (String.sub p 0 (i + 1)) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
  Bytes.to_string b
