(** Attribute values and matching rules.

    LDAP attribute values are strings whose comparison semantics depend
    on the attribute's syntax (RFC 2252).  This module implements the
    small set of matching rules the paper's directory needs:
    case-insensitive strings, case-exact strings, integers and
    telephone numbers.  All containment and filter-evaluation decisions
    flow through {!compare} and {!normalize} so that every component of
    the system agrees on value semantics. *)

type syntax =
  | Case_ignore  (** [caseIgnoreMatch]: compared case-insensitively, with
                     leading/trailing/duplicate spaces squashed. *)
  | Case_exact  (** [caseExactMatch]: compared byte-wise after space
                    squashing. *)
  | Integer  (** [integerMatch]: compared numerically; values that do not
                 parse as integers order after all integers,
                 lexicographically. *)
  | Telephone  (** [telephoneNumberMatch]: case-insensitive with spaces
                   and hyphens removed. *)

val syntax_to_string : syntax -> string
(** Stable identifier for serialization ("case_ignore", ...). *)

val syntax_of_string : string -> syntax option
(** Inverse of {!syntax_to_string}; [None] on unknown identifiers. *)

val normalize : syntax -> string -> string
(** [normalize syntax v] is the canonical form used for equality,
    ordering, indexing and DN comparison. *)

val canonical : syntax -> string -> string
(** Canonical representative of the value's equality class:
    [equal syntax a b] iff [canonical syntax a = canonical syntax b].
    Unlike {!normalize} this also folds Integer-syntax spellings
    ("07" and "7") together, so it is safe to use as a hash key that
    stands in for {!equal}. *)

val compare : syntax -> string -> string -> int
(** Total order on values under the given syntax.  For [Integer] this
    is numeric order on values that parse as integers. *)

val equal : syntax -> string -> string -> bool

val matches_substring :
  syntax -> initial:string option -> any:string list -> final:string option ->
  string -> bool
(** [matches_substring syntax ~initial ~any ~final v] implements the
    RFC 2254 substring assertion: [v] must start with [initial], then
    contain each element of [any] in order without overlap, then end
    with [final]. *)

val successor_of_prefix : string -> string
(** [successor_of_prefix p] is the smallest string strictly greater than
    every string having prefix [p] (in normalized byte order): the
    prefix with its last byte incremented, dropping trailing [0xff]
    bytes.  Used to interpret prefix assertions [attr=p*] as the range
    [[p, successor_of_prefix p)] during containment checks and index
    range scans.  Raises [Invalid_argument] on the empty string or a
    prefix made solely of [0xff] bytes. *)
