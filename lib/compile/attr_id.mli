(** Interned attribute identifiers.

    Attribute names appear millions of times on the hot paths — once
    per predicate per entry in filter evaluation, once per value in
    the predicate and containment indexes — and every comparison today
    pays a [String.lowercase_ascii] plus a string hash or compare.
    This module interns lowercased attribute names into dense small
    integers once, so hot-path code compares ids with [=] and indexes
    arrays by id.  The table is process-global and append-only: ids
    are stable for the life of the process and never reused. *)

type t = int
(** An interned attribute name.  Ids are dense, starting at 0. *)

val intern : string -> t
(** [intern name] returns the id for [name], case-insensitively,
    allocating a fresh id on first sight.  O(1) amortized. *)

val interned : string -> t option
(** [interned name] is [Some id] if [name] has already been interned,
    without allocating a new id. *)

val name : t -> string
(** [name id] is the lowercased attribute name behind [id].  Raises
    [Invalid_argument] on an id never returned by {!intern}. *)

val count : unit -> int
(** Number of distinct names interned so far (also the next fresh id). *)

val equal : t -> t -> bool
(** Integer equality, monomorphic. *)

val compare : t -> t -> int
(** Integer comparison, usable as a [Map.OrderedType]. *)
