(* A backwards-growing byte buffer: data occupies the tail
   [pos, capacity) of [buf] and every write prepends.  DER values are
   length-prefixed, so writing a composite value forwards needs either
   a length pre-pass or an intermediate copy per nesting level (the
   [String.concat] codec paid the latter); writing the body first and
   prepending length-then-tag needs neither.  Growing reallocates and
   blits the used tail to the end of the larger buffer. *)

type t = { mutable buf : Bytes.t; mutable pos : int }

let create ?(capacity = 256) () =
  let capacity = max capacity 16 in
  { buf = Bytes.create capacity; pos = capacity }

let clear t = t.pos <- Bytes.length t.buf
let length t = Bytes.length t.buf - t.pos

let grow t need =
  let len = Bytes.length t.buf in
  let used = len - t.pos in
  let cap = ref (max 32 (2 * len)) in
  while !cap - used < need do
    cap := 2 * !cap
  done;
  let buf = Bytes.create !cap in
  Bytes.blit t.buf t.pos buf (!cap - used) used;
  t.buf <- buf;
  t.pos <- !cap - used

let prepend_char t c =
  if t.pos = 0 then grow t 1;
  t.pos <- t.pos - 1;
  Bytes.unsafe_set t.buf t.pos c

let prepend_string t s =
  let n = String.length s in
  if t.pos < n then grow t n;
  t.pos <- t.pos - n;
  Bytes.blit_string s 0 t.buf t.pos n

let mark t = length t
let since t m = length t - m
let contents t = Bytes.sub_string t.buf t.pos (length t)
let to_buffer t b = Buffer.add_subbytes b t.buf t.pos (length t)
let view t = (t.buf, t.pos, length t)
