type slot = {
  id : Attr_id.t;
  cid : Attr_id.t;
  syntax : Value.syntax;
  canon : string array;
  norm : string array;
  ints : int option array;
}

type centry = { dn_canon : string; slots : slot array }

let sort_slots slots =
  Array.sort (fun a b -> Stdlib.compare a.id b.id) slots;
  slots

let make_centry ~dn_canon slots = { dn_canon; slots = sort_slots slots }

(* Binary search over the id-sorted slot array; -1 when absent. *)
let slot_index ce id =
  let slots = ce.slots in
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      let s = (Array.unsafe_get slots mid).id in
      if s = id then mid else if s < id then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length slots)

let find_slot ce id =
  match slot_index ce id with -1 -> None | i -> Some ce.slots.(i)

type cmp = { c_id : Attr_id.t; c_ge : bool; c_v : string }

type cmp_int = {
  i_id : Attr_id.t;
  i_ge : bool;
  i_v : int option;
  i_vs : string;
}

type sub = {
  s_id : Attr_id.t;
  s_initial : string option;
  s_any : string array;
  s_final : string option;
}

type t =
  | P_true
  | P_false
  | P_all of t array
  | P_any of t array
  | P_not of t
  | P_present of Attr_id.t
  | P_eq of Attr_id.t * string
  | P_cmp of cmp
  | P_cmp_int of cmp_int
  | P_sub of sub

let mem_string (a : string array) v =
  let n = Array.length a in
  let rec go i = i < n && (String.equal (Array.unsafe_get a i) v || go (i + 1)) in
  go 0

(* Mirrors Value.find_from, over already-normalized strings. *)
let find_from s ~from pat =
  let n = String.length s and m = String.length pat in
  if m = 0 then from
  else
    let rec go i =
      if i + m > n then -1 else if String.sub s i m = pat then i + m else go (i + 1)
    in
    go from

(* Mirrors Value.matches_substring with the normalization pre-applied
   to both the pattern segments (at compile time) and the value (in
   the slot's [norm] column). *)
let sub_matches (p : sub) v =
  let pos =
    match p.s_initial with
    | None -> 0
    | Some i ->
        let n = String.length i in
        if String.length v >= n && String.sub v 0 n = i then n else -1
  in
  if pos < 0 then false
  else
    let n_any = Array.length p.s_any in
    let rec consume pos k =
      if k >= n_any then pos
      else
        match find_from v ~from:pos p.s_any.(k) with
        | -1 -> -1
        | pos' -> consume pos' (k + 1)
    in
    let pos = consume pos 0 in
    if pos < 0 then false
    else
      match p.s_final with
      | None -> true
      | Some f ->
          let n = String.length f and vn = String.length v in
          vn - pos >= n && String.sub v (vn - n) n = f

(* Replicates Value.compare_integer's Some/None lattice using the
   pre-parsed ints; the string fallback only fires when neither side
   parses, where canonical = normalized so [i_vs]/[canon] are the
   exact strings the interpreter would compare. *)
let cmp_int_value (p : cmp_int) (x : int option) (xs : string) =
  match (x, p.i_v) with
  | Some a, Some b -> Int.compare a b
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> String.compare xs p.i_vs

let rec matches p ce =
  match p with
  | P_true -> true
  | P_false -> false
  | P_not g -> not (matches g ce)
  | P_all gs ->
      let n = Array.length gs in
      let rec go i = i >= n || (matches (Array.unsafe_get gs i) ce && go (i + 1)) in
      go 0
  | P_any gs ->
      let n = Array.length gs in
      let rec go i = i < n && (matches (Array.unsafe_get gs i) ce || go (i + 1)) in
      go 0
  | P_present id -> slot_index ce id >= 0
  | P_eq (id, v) -> (
      match slot_index ce id with
      | -1 -> false
      | i -> mem_string ce.slots.(i).canon v)
  | P_cmp c -> (
      match slot_index ce c.c_id with
      | -1 -> false
      | i ->
          let canon = ce.slots.(i).canon in
          let n = Array.length canon in
          let rec go k =
            k < n
            && (let d = String.compare (Array.unsafe_get canon k) c.c_v in
                (if c.c_ge then d >= 0 else d <= 0)
               || go (k + 1))
          in
          go 0)
  | P_cmp_int c -> (
      match slot_index ce c.i_id with
      | -1 -> false
      | i ->
          let s = ce.slots.(i) in
          let n = Array.length s.canon in
          let rec go k =
            k < n
            && (let d = cmp_int_value c s.ints.(k) s.canon.(k) in
                (if c.i_ge then d >= 0 else d <= 0)
               || go (k + 1))
          in
          go 0)
  | P_sub p -> (
      match slot_index ce p.s_id with
      | -1 -> false
      | i ->
          let norm = ce.slots.(i).norm in
          let n = Array.length norm in
          let rec go k = k < n && (sub_matches p (Array.unsafe_get norm k) || go (k + 1)) in
          go 0)
