(** Reusable backwards-writing byte buffer for zero-copy DER encoding.

    DER values are [tag length body]: the length is written {e before}
    the body, but is only known {e after} the body is produced.  A
    forward writer must therefore either pre-compute sizes or build
    every nested value in its own intermediate string (the cost the
    old [String.concat]-based codec paid at every nesting level).  A
    backwards writer dissolves the problem: emit the body first
    (children in reverse order), then prepend its length and tag.
    Each byte is written exactly once, and one buffer is reused across
    encodes — the only per-message allocation is the final
    {!contents}, and even that is skipped by callers that blit with
    {!to_buffer} or hash via {!view}. *)

type t
(** A growable buffer whose contents occupy the tail of its backing
    store; all writes prepend. *)

val create : ?capacity:int -> unit -> t
(** [create ()] is an empty buffer.  [capacity] (default 256) sizes
    the initial backing store; the buffer grows geometrically on
    demand. *)

val clear : t -> unit
(** Reset to empty, keeping the backing store for reuse. *)

val length : t -> int
(** Number of bytes currently in the buffer. *)

val prepend_char : t -> char -> unit
(** Write one byte before the current contents. *)

val prepend_string : t -> string -> unit
(** Write a string before the current contents. *)

val mark : t -> int
(** [mark t] snapshots the current {!length}; pair with {!since} to
    measure the size of a value emitted after the mark. *)

val since : t -> int -> int
(** [since t m] is the number of bytes prepended since {!mark}
    returned [m] — i.e. the body length a DER header must declare. *)

val contents : t -> string
(** Copy out the buffered bytes as a string (one allocation). *)

val to_buffer : t -> Buffer.t -> unit
(** Append the buffered bytes to [b] without an intermediate string. *)

val view : t -> Bytes.t * int * int
(** [(bytes, off, len)] exposing the live region without copying —
    for checksumming or blitting.  Invalidated by the next write. *)
