(** Compiled filter programs over compiled entry views.

    The interpreted evaluator ([Ldap.Filter.matches]) re-resolves each
    predicate's attribute syntax against the schema and re-normalizes
    both the entry's values and the assertion value on {e every}
    evaluation.  This module is the target of a one-time lowering:

    - a {!centry} is an entry flattened into an id-sorted array of
      {!slot}s, each carrying the values pre-canonicalized (and, for
      Integer syntax, pre-parsed) under the attribute's matching rule;
    - a {!t} is a filter lowered to a short-circuit bytecode tree
      whose predicates carry pre-canonicalized assertion values keyed
      by interned attribute id.

    {!matches} then runs with no schema lookups, no normalization and
    no allocation.  The lowering itself lives next to [Schema] in
    [Ldap.Filter.compile] / [Ldap.Entry.compiled]; the interpreted
    path remains the semantic oracle (see the QCheck equivalence
    property in the test suite). *)

type slot = {
  id : Attr_id.t;  (** interned literal (lowercased) attribute name *)
  cid : Attr_id.t;
      (** interned schema-canonical attribute name (aliases resolved) —
          the key the predicate index dispatches on *)
  syntax : Value.syntax;  (** matching rule resolved once from the schema *)
  canon : string array;  (** values under [Value.canonical syntax] *)
  norm : string array;
      (** values under [Value.normalize syntax]; physically shares
          [canon] except for Integer syntax where the two differ *)
  ints : int option array;
      (** pre-parsed integers, [Some] per value that parses; [[||]]
          for non-Integer syntaxes *)
}
(** One attribute of a compiled entry. *)

type centry = { dn_canon : string; slots : slot array }
(** A compiled entry view: canonical DN plus slots sorted by [id]. *)

val make_centry : dn_canon:string -> slot array -> centry
(** [make_centry ~dn_canon slots] sorts [slots] by id (in place) and
    wraps them as a compiled entry. *)

val slot_index : centry -> Attr_id.t -> int
(** Binary-search the slot carrying [id]; [-1] when the entry has no
    such attribute. *)

val find_slot : centry -> Attr_id.t -> slot option
(** Allocating convenience over {!slot_index} for cold callers. *)

type cmp = { c_id : Attr_id.t; c_ge : bool; c_v : string }
(** Ordering predicate for lexically-ordered syntaxes: does some value
    compare [>= 0] ([c_ge]) or [<= 0] against the pre-normalized
    assertion [c_v]? *)

type cmp_int = {
  i_id : Attr_id.t;
  i_ge : bool;
  i_v : int option;  (** assertion pre-parsed as an integer *)
  i_vs : string;  (** assertion canonical string, for the neither-parses fallback *)
}
(** Ordering predicate under Integer syntax, mirroring
    [Value.compare_integer]'s parse lattice. *)

type sub = {
  s_id : Attr_id.t;
  s_initial : string option;
  s_any : string array;
  s_final : string option;
}
(** RFC 2254 substring assertion with every segment pre-normalized. *)

type t =
  | P_true  (** matches everything (empty AND) *)
  | P_false  (** matches nothing (empty OR) *)
  | P_all of t array  (** short-circuit conjunction *)
  | P_any of t array  (** short-circuit disjunction *)
  | P_not of t  (** negation *)
  | P_present of Attr_id.t  (** attribute present with at least one value *)
  | P_eq of Attr_id.t * string  (** some value's canonical form equals this *)
  | P_cmp of cmp  (** >= / <= under a lexical syntax *)
  | P_cmp_int of cmp_int  (** >= / <= under Integer syntax *)
  | P_sub of sub  (** substring match over normalized values *)
(** Filter bytecode.  Constructors carry everything evaluation needs;
    nothing is resolved at match time. *)

val matches : t -> centry -> bool
(** [matches p ce] evaluates the program against a compiled entry.
    Agrees with [Ldap.Filter.matches schema f e] whenever [p] and
    [ce] were compiled from [f] and [e] under the same [schema]. *)

val sub_matches : sub -> string -> bool
(** [sub_matches p v] tests one already-normalized value against a
    substring assertion — exposed for index probing. *)
