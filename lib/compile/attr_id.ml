(* A process-global intern table mapping lowercased attribute names to
   dense small integers.  Ids are allocated on first sight and never
   reused, so an id obtained anywhere in the process stays valid for
   its lifetime; the table is tiny (one slot per distinct attribute
   name ever seen) and is deliberately never cleared. *)

type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 64
let names = ref (Array.make 64 "")
let used = ref 0

let intern name =
  let key = String.lowercase_ascii name in
  match Hashtbl.find_opt table key with
  | Some id -> id
  | None ->
      let id = !used in
      if id = Array.length !names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit !names 0 bigger 0 id;
        names := bigger
      end;
      !names.(id) <- key;
      incr used;
      Hashtbl.add table key id;
      id

let interned name = Hashtbl.find_opt table (String.lowercase_ascii name)

let name id =
  if id < 0 || id >= !used then invalid_arg "Attr_id.name: unknown id";
  !names.(id)

let count () = !used
let equal (a : int) (b : int) = a = b
let compare (a : int) (b : int) = Stdlib.compare a b
