(* Benchmark harness.

   Two halves:
   1. Experiment regeneration: every table and figure of the paper's
      evaluation (section 7), the protocol illustrations (Figures 2-3)
      and the section 5.2 history ablation, printed as ASCII tables by
      Ldap_eval.Figures.
   2. Micro-benchmarks backing the section 7.4 claims about
      query-processing cost: template vs general containment, index
      lookup cost as the number of stored filters grows, plus substrate
      primitives (filter parse/eval, DN algebra, indexed search), all
      timed by a hand-rolled warm-up + least-squares harness.

   Usage: main.exe [--quick] [--micro-only | --figures-only | --smoke
                   | micro [--smoke] [--json]
                   | tree-fanout [--smoke] [--json]
                   | latency-staleness [--smoke] [--json]
                   | crash-restart [--smoke] [--json]
                   | anti-entropy [--smoke] [--json]
                   | shard [--smoke] [--json]
                   | scale [--smoke] [--json] [--long-haul]
                   | adapt [--smoke] [--json]]

   micro runs the compiled-vs-interpreted comparison for the hot paths
   (filter bytecode vs AST interpretation, zero-copy DER writer vs
   string combinators), checks the two implementations agree on every
   fixture, enforces a speedup floor, and with --json writes
   BENCH_PR7.json; --smoke lowers the floor and restricts the JSON to
   the deterministic equivalence counts so CI can diff two runs.

   tree-fanout runs the cascading-topology sweep (flat star vs 2-tier
   tree, Ldap_topology.Sweep); with --json it writes BENCH_PR3.json.

   latency-staleness runs the discrete-event sweep (per-poll response
   time and per-update staleness percentiles, star vs tree, clean vs
   lossy links); with --json it writes BENCH_PR4.json.

   crash-restart runs the durable-store recovery sweep (durable-cookie
   resume, clean and torn-tail, vs cold re-fetch vs reparent) plus the
   randomized WAL-corruption sweep; with --json it writes
   BENCH_PR5.json.

   anti-entropy runs the drifted crash/restart sweep (Merkle hash-tree
   reconciliation vs cold re-fetch across drift fractions); with --json
   it writes BENCH_PR6.json.

   shard runs the partitioned-directory sweep (routed write throughput
   vs shard count, router fan-out vs naive broadcast, per-shard
   crash/restart through the composite-cookie resume); with --json it
   writes BENCH_PR8.json.  Gates: single-block filters cover exactly
   one shard at every count, 4 shards deliver at least twice the
   1-shard write throughput, every crash recovery converges and the
   resumed consumer pays less than a cold re-fetch.

   scale runs the paper-scale content-plane sweep (the full 500k-entry
   enterprise behind a root master, an interior node tier and a
   1000-leaf fleet, Table 1 query mix with Zipf drift and a diurnally
   modulated update stream, against a 60k baseline on the same
   topology); with --json it writes BENCH_PR9.json.  Gates: no node
   falls back to a full-content rescan, spine entries scanned per poll
   stay within 2x of the baseline (snapshot-diff serving is O(diff),
   not O(directory)), live heap words grow sublinearly in leaf count,
   and (full runs) the wall-clock p99 incremental serve time stays
   within 2x of the baseline — initial-content and degraded transfers
   are O(selection) by design and are reported ungated as
   serve_all_p99_us.

   scale --long-haul instead runs the long write-pressure scenario
   (Ldap_adaptive.Drift.run_long_haul): a sustained committed-update
   stream against a master with both the session-history high-water
   mark and the persist queue bound set, a laggard leaf that never
   polls and a persist leaf that stops draining.  Gates: both
   escalation counters fire, both buffers stay within one action of
   their bounds, and every participant reconverges.

   adapt runs the drift scenario sweep (Ldap_adaptive.Drift): the
   five-phase shifting workload in delta-transition and cold-swap
   modes plus both persist-backpressure scenarios and the long-haul
   point; with --json it writes BENCH_PR10.json.  Gates: the
   geography-flip delta transition ships at most half the cold-swap
   bytes, every drift phase's tail hit ratio recovers, the stalled
   leaf's master-side queue stays bounded and drains, and no
   transition leaves failed installs.

   Every full (non-smoke) JSON dump also records the process peak RSS
   (VmHWM) so memory regressions show up across PRs; smoke JSON omits
   it to stay bit-deterministic for the CI double-run diffs.

   --smoke runs a seconds-scale deterministic subset (the protocol
   illustrations plus a tiny lossy-network sweep) and is wired into
   the default test alias as an end-to-end exercise of the bench
   harness. *)

open Ldap
module C = Ldap_containment
module Eval = Ldap_eval
module Compile = Ldap_compile

(* --- Timing harness ----------------------------------------------------
   Warm-up iterations first (they fill the memo caches — compiled entry
   views, interned attributes, hashtable resizes — so the fit sees the
   steady state), then wall time is sampled at several batch sizes and
   ns/run is the slope of an ordinary least-squares fit of time against
   iteration count.  The r^2 reported is the standard coefficient of
   determination of that fit, which an intercept term keeps in [0, 1] —
   the previous harness could report negative values on short runs. *)

type fit = { ns : float; r2 : float }

let ols samples =
  let n = float_of_int (List.length samples) in
  let mean f = List.fold_left (fun a s -> a +. f s) 0. samples /. n in
  let mx = mean fst and my = mean snd in
  let sxx, sxy =
    List.fold_left
      (fun (sxx, sxy) (x, y) ->
        (sxx +. ((x -. mx) *. (x -. mx)), sxy +. ((x -. mx) *. (y -. my))))
      (0., 0.) samples
  in
  let b = if sxx > 0. then sxy /. sxx else 0. in
  let a = my -. (b *. mx) in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. a -. (b *. x) in
        acc +. (e *. e))
      0. samples
  in
  let ss_tot =
    List.fold_left (fun acc (_, y) -> acc +. ((y -. my) *. (y -. my))) 0. samples
  in
  { ns = b *. 1e9; r2 = (if ss_tot > 0. then 1. -. (ss_res /. ss_tot) else 1.) }

let measure f =
  for _ = 1 to 256 do
    f ()
  done;
  let time n =
    let t0 = Sys.time () in
    for _ = 1 to n do
      f ()
    done;
    Sys.time () -. t0
  in
  (* Batches must dwarf the clock granularity for the fit to mean
     anything; grow until one base batch takes ~10 ms of CPU time. *)
  let rec calibrate n = if time n >= 0.01 then n else calibrate (n * 4) in
  let base = calibrate 16 in
  let samples =
    List.concat_map
      (fun m ->
        List.init 2 (fun _ ->
            let n = base * m in
            (float_of_int n, time n)))
      [ 1; 2; 3; 4; 5 ]
  in
  ols samples

(* Slope only, for callers that predate the fit diagnostics. *)
let ns_per_run f = (measure f).ns

(* --- Micro-benchmark fixtures ---------------------------------------- *)

let schema = Schema.default

let fixture_entry =
  Entry.make
    (Dn.of_string_exn "cn=john doe 0456,c=aa,o=xyz")
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ "john doe 0456" ]);
      ("sn", [ "doe" ]);
      ("serialNumber", [ "0400456" ]);
      ("mail", [ "jd8f3a21@aa.xyz.com" ]);
      ("departmentNumber", [ "2406" ]);
      ("age", [ "42" ]);
    ]

let serial_filter = Filter.of_string_exn "(serialNumber=0400456)"
let dept_filter = Filter.of_string_exn "(&(departmentNumber=2406)(divisionNumber=24))"
let prefix_filter = Filter.of_string_exn "(serialNumber=04004*)"
let complex_filter =
  Filter.of_string_exn "(&(objectclass=inetOrgPerson)(|(sn=doe)(sn=smith))(age>=30))"

let filter_string = "(&(objectclass=inetOrgPerson)(|(sn=doe)(sn=smith))(age>=30))"

let dn_string = "cn=john doe 0456,ou=research,c=us,o=xyz"
let base_dn = Dn.of_string_exn "o=xyz"
let deep_dn = Dn.of_string_exn dn_string

(* A populated index with [n] stored serial-prefix queries, plus one
   query that hits and one that misses. *)
let make_index n =
  let index = C.Containment_index.create schema in
  for i = 0 to n - 1 do
    let filter = Filter.of_string_exn (Printf.sprintf "(serialNumber=%05d*)" i) in
    C.Containment_index.add index (Query.make ~base:base_dn filter) i
  done;
  index

let hit_query n = Query.make ~base:base_dn
    (Filter.of_string_exn (Printf.sprintf "(serialNumber=%05d99)" (n / 2)))

let miss_query = Query.make ~base:base_dn (Filter.of_string_exn "(serialNumber=99999x)")

let compiled_condition =
  let left = C.Template.of_string_exn "(serialnumber=_)" in
  let right = C.Template.of_string_exn "(serialnumber=_*)" in
  match C.Symbolic.compile schema ~left ~right with
  | Some c -> c
  | None -> failwith "compile failed"

let small_backend =
  let b = Backend.create ~indexed:[ "serialnumber" ] schema in
  (match
     Backend.add_context b
       (Entry.make base_dn [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ])
   with
  | Ok () -> ()
  | Error e -> failwith e);
  for i = 0 to 4999 do
    let cn = Printf.sprintf "p%05d" i in
    let e =
      Entry.make
        (Dn.child_ava base_dn "cn" cn)
        [
          ("objectclass", [ "inetOrgPerson" ]);
          ("cn", [ cn ]); ("sn", [ cn ]);
          ("serialNumber", [ Printf.sprintf "%07d" i ]);
        ]
    in
    match Backend.apply b (Update.add e) with
    | Ok _ -> ()
    | Error msg -> failwith msg
  done;
  b

let indexed_search_query =
  Query.make ~base:base_dn (Filter.of_string_exn "(serialNumber=0002500)")

let micro_tests =
  [
    ("filter/parse", fun () -> ignore (Filter.of_string_exn filter_string : Filter.t));
    ( "filter/eval",
      fun () -> ignore (Filter.matches schema complex_filter fixture_entry : bool) );
    ("filter/normalize", fun () -> ignore (Filter.normalize complex_filter : Filter.t));
    ("dn/parse", fun () -> ignore (Dn.of_string_exn dn_string : Dn.t));
    ("dn/ancestor", fun () -> ignore (Dn.ancestor_of base_dn deep_dn : bool));
    ( "containment/same-template (Prop 3)",
      fun () ->
        ignore (C.Filter_containment.contained schema serial_filter serial_filter : bool)
    );
    ( "containment/cross-template compiled (Prop 2)",
      fun () ->
        ignore
          (C.Symbolic.eval schema compiled_condition ~left:[| "0400456" |]
             ~right:[| "04004" |]
            : bool) );
    ( "containment/general (Prop 1)",
      fun () ->
        ignore
          (C.Filter_containment.contained_general schema serial_filter prefix_filter
            : bool) );
    ( "containment/general conjunctive",
      fun () ->
        ignore
          (C.Filter_containment.contained_general schema dept_filter dept_filter : bool)
    );
    ( "backend/indexed search",
      fun () -> ignore (Backend.search small_backend indexed_search_query) );
  ]

let index_tests =
  List.concat_map
    (fun n ->
      let index = make_index n in
      let hit = hit_query n in
      [
        ( Printf.sprintf "index/find hit (%d filters)" n,
          fun () -> ignore (C.Containment_index.find_container index hit) );
        ( Printf.sprintf "index/find miss (%d filters)" n,
          fun () -> ignore (C.Containment_index.find_container index miss_query) );
      ])
    [ 50; 200; 800; 3200 ]

(* Returns measured rows (name, ns/run, r^2) for the JSON dump. *)
let run_micro () =
  let measured =
    List.map
      (fun (name, f) ->
        let fit = measure f in
        ("micro/" ^ name, Some fit.ns, Some fit.r2))
      (micro_tests @ index_tests)
  in
  let rows =
    List.map
      (fun (name, ns, r2) ->
        [
          name;
          (match ns with Some v -> Printf.sprintf "%.1f" v | None -> "n/a");
          (match r2 with Some v -> Printf.sprintf "%.4f" v | None -> "n/a");
        ])
      measured
  in
  Eval.Report.print
    (Eval.Report.make ~title:"Micro-benchmarks (section 7.4 processing costs)"
       ~notes:
         [
           "template-based containment (Props 2-3) should be far cheaper than the";
           "general Prop 1 procedure; index lookups should scale with filter count";
         ]
       ~columns:[ "benchmark"; "ns/run"; "r^2" ] ~rows ());
  measured

(* --- Update fan-out sweep ---------------------------------------------
   ns per committed update with N live sessions, routed vs naive
   dispatch.  Each session holds a distinct serialNumber equality
   filter; the measured update toggles the mail attribute of a single
   entry, so it affects exactly one filter's content — the sublinear
   case the predicate index exists for. *)

module R = Ldap_resync

let fanout_sessions = [ 10; 100; 1000 ]

let make_fanout_master ~sessions ~dispatch =
  let b = Backend.create ~indexed:[ "serialnumber" ] schema in
  (match
     Backend.add_context b
       (Entry.make base_dn [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ])
   with
  | Ok () -> ()
  | Error e -> failwith e);
  for i = 0 to max 999 (sessions - 1) do
    let cn = Printf.sprintf "p%05d" i in
    let e =
      Entry.make
        (Dn.child_ava base_dn "cn" cn)
        [
          ("objectclass", [ "inetOrgPerson" ]);
          ("cn", [ cn ]); ("sn", [ cn ]);
          ("serialNumber", [ Printf.sprintf "%07d" i ]);
        ]
    in
    match Backend.apply b (Update.add e) with Ok _ -> () | Error msg -> failwith msg
  done;
  let master = R.Master.create ~strategy:R.Master.Session_history ~dispatch b in
  for i = 0 to sessions - 1 do
    let q =
      Query.make ~base:base_dn
        (Filter.of_string_exn (Printf.sprintf "(serialNumber=%07d)" i))
    in
    match R.Master.handle master { R.Protocol.mode = R.Protocol.Poll; cookie = None } q with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  (b, master)

let fanout_measure ~sessions ~dispatch =
  let b, master = make_fanout_master ~sessions ~dispatch in
  ignore master;
  let target = Dn.child_ava base_dn "cn" "p00000" in
  let flip = ref false in
  ns_per_run (fun () ->
      flip := not !flip;
      let v = if !flip then "a@xyz" else "b@xyz" in
      match Backend.apply b (Update.modify target [ Update.replace_values "mail" [ v ] ]) with
      | Ok _ -> ()
      | Error e -> failwith e)

(* Returns (sessions, routed ns/update, naive ns/update) rows. *)
let run_fanout () =
  let measured =
    List.map
      (fun sessions ->
        let routed = fanout_measure ~sessions ~dispatch:R.Master.Routed in
        let naive = fanout_measure ~sessions ~dispatch:R.Master.Naive in
        (sessions, routed, naive))
      fanout_sessions
  in
  let rows =
    List.map
      (fun (sessions, routed, naive) ->
        [
          string_of_int sessions;
          Printf.sprintf "%.1f" routed;
          Printf.sprintf "%.1f" naive;
          Printf.sprintf "%.1fx" (naive /. routed);
        ])
      measured
  in
  Eval.Report.print
    (Eval.Report.make ~title:"Update fan-out: ns/update vs live sessions"
       ~notes:
         [
           "one committed update toggling a non-filter attribute of one entry;";
           "naive dispatch classifies it against every session, routed dispatch";
           "only against the sessions whose filter anchors the update hits";
         ]
       ~columns:[ "sessions"; "routed ns"; "naive ns"; "speedup" ] ~rows ());
  measured

(* --- JSON dump -------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~path ~micro ~fanout =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let opt = function Some v -> Printf.sprintf "%.4f" v | None -> "null" in
  out "{\n  \"micro\": [\n";
  List.iteri
    (fun i (name, ns, r2) ->
      out "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}%s\n"
        (json_escape name) (opt ns) (opt r2)
        (if i = List.length micro - 1 then "" else ","))
    micro;
  out "  ],\n  \"fanout\": [\n";
  List.iteri
    (fun i (sessions, routed, naive) ->
      out
        "    {\"sessions\": %d, \"routed_ns_per_update\": %.1f, \
         \"naive_ns_per_update\": %.1f, \"speedup\": %.2f}%s\n"
        sessions routed naive (naive /. routed)
        (if i = List.length fanout - 1 then "" else ","))
    fanout;
  out "  ],\n  \"peak_rss_kb\": %d\n}\n" (Ldap_topology.Sweep.peak_rss_kb ());
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* --- Cascading topology sweep ----------------------------------------- *)

module T = Ldap_topology

(* Peak process RSS (VmHWM), appended to every BENCH_PR*.json.  Full
   runs only: RSS is inherently nondeterministic, and the smoke outputs
   must diff clean across the CI double runs. *)
let rss_fragment ~smoke =
  if smoke then ""
  else Printf.sprintf ",\n  \"peak_rss_kb\": %d" (T.Sweep.peak_rss_kb ())

let run_tree_fanout ~smoke ~json () =
  let config =
    if smoke then T.Sweep.smoke_config else T.Sweep.default_config
  in
  let points = T.Sweep.tree_fanout ~config () in
  let rows =
    List.map
      (fun (p : T.Sweep.point) ->
        [
          p.T.Sweep.shape;
          string_of_int p.T.Sweep.consumers;
          string_of_int p.T.Sweep.root_sessions;
          string_of_int p.T.Sweep.build_root_bytes;
          string_of_int p.T.Sweep.update_root_bytes;
          string_of_int p.T.Sweep.update_total_bytes;
          string_of_int p.T.Sweep.convergence_rounds;
        ])
      points
  in
  Eval.Report.print
    (Eval.Report.make ~title:"Tree fan-out: flat star vs 2-tier tree"
       ~notes:
         [
           "root sessions and root-link bytes stay flat in the tree (only the";
           "interior nodes hold root sessions); the star grows both linearly;";
           "the tree pays one extra convergence round for the extra tier";
         ]
       ~columns:
         [
           "shape"; "consumers"; "root sessions"; "build root B";
           "update root B"; "update total B"; "rounds";
         ]
       ~rows ());
  if json then begin
    let path = "BENCH_PR3.json" in
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"config\": \"%s\",\n  \"tree_fanout\": %s%s\n}\n"
      (if smoke then "smoke" else "default")
      (T.Sweep.json_of_points points)
      (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

(* --- Latency/staleness sweep ------------------------------------------ *)

let lat_rows points =
  List.map
    (fun (p : T.Sweep.lat_point) ->
      [
        p.T.Sweep.lp_shape;
        p.T.Sweep.lp_faults;
        string_of_int p.T.Sweep.lp_polls;
        string_of_int p.T.Sweep.lp_resp_p50;
        string_of_int p.T.Sweep.lp_resp_p90;
        string_of_int p.T.Sweep.lp_resp_max;
        string_of_int p.T.Sweep.lp_stale_p50;
        string_of_int p.T.Sweep.lp_stale_p90;
        string_of_int p.T.Sweep.lp_stale_max;
        string_of_int p.T.Sweep.lp_stale_censored;
      ])
    points

let run_latency_staleness ~smoke ~json () =
  let config =
    if smoke then T.Sweep.lat_smoke_config else T.Sweep.lat_default_config
  in
  let points = T.Sweep.latency_staleness ~config () in
  Eval.Report.print
    (Eval.Report.make
       ~title:"Latency/staleness: star vs tree, clean vs lossy (virtual ticks)"
       ~notes:
         [
           "event-driven run: every participant polls on its own staggered loop";
           "over links with uniform latency; staleness is commit-to-leaf-ack time.";
           "expected: tree staleness >= star (extra tier), lossy response >= clean";
         ]
       ~columns:
         [
           "shape"; "faults"; "polls"; "resp p50"; "resp p90"; "resp max";
           "stale p50"; "stale p90"; "stale max"; "censored";
         ]
       ~rows:(lat_rows points) ());
  if json then begin
    let path = "BENCH_PR4.json" in
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"config\": \"%s\",\n  \"latency_staleness\": %s%s\n}\n"
      (if smoke then "smoke" else "default")
      (T.Sweep.json_of_lat_points points)
      (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

let run_crash_restart ~smoke ~json () =
  let config =
    if smoke then T.Sweep.cr_smoke_config else T.Sweep.cr_default_config
  in
  let points = T.Sweep.crash_restart ~config () in
  let corruption = T.Sweep.corruption_sweep ~config () in
  Eval.Report.print
    (Eval.Report.make
       ~title:"Crash/restart recovery: durable resume vs cold re-fetch"
       ~notes:
         [
           "a fraction of star leaves crash mid-run, updates land while down,";
           "then they restart; durable modes recover from WAL+snapshot and";
           "resume ReSync from the durable cookie, cold re-fetches everything.";
           "expected: durable resync bytes < cold; torn tails truncate cleanly";
         ]
       ~columns:
         [
           "mode"; "affected"; "resync bytes"; "replayed"; "truncated";
           "recover mean"; "recover max"; "converged";
         ]
       ~rows:
         (List.map
            (fun (p : T.Sweep.cr_point) ->
              [
                p.T.Sweep.cp_mode;
                string_of_int p.T.Sweep.cp_affected;
                string_of_int p.T.Sweep.cp_resync_bytes;
                string_of_int p.T.Sweep.cp_replayed;
                string_of_int p.T.Sweep.cp_truncated;
                string_of_int p.T.Sweep.cp_recover_ticks_mean;
                string_of_int p.T.Sweep.cp_recover_ticks_max;
                string_of_int p.T.Sweep.cp_converged;
              ])
            points)
       ());
  Printf.printf
    "corruption sweep: %d trials, %d recovered, %d truncated, %d discarded, \
     %d merkle-repaired, %d cold-repaired, %d stale, %d panics\n%!"
    corruption.T.Sweep.cs_trials corruption.T.Sweep.cs_recovered
    corruption.T.Sweep.cs_truncated corruption.T.Sweep.cs_discarded
    corruption.T.Sweep.cs_repaired_merkle corruption.T.Sweep.cs_repaired_cold
    corruption.T.Sweep.cs_stale corruption.T.Sweep.cs_panics;
  if corruption.T.Sweep.cs_panics > 0 then
    failwith "crash-restart: corruption sweep panicked";
  if corruption.T.Sweep.cs_stale > 0 then
    failwith
      "crash-restart: corruption sweep left a replica serving stale content";
  (let durable =
     List.find (fun (p : T.Sweep.cr_point) -> p.T.Sweep.cp_mode = "durable") points
   in
   let cold =
     List.find (fun (p : T.Sweep.cr_point) -> p.T.Sweep.cp_mode = "cold") points
   in
   let reparent =
     List.find (fun (p : T.Sweep.cr_point) -> p.T.Sweep.cp_mode = "reparent") points
   in
   if durable.T.Sweep.cp_resync_bytes >= cold.T.Sweep.cp_resync_bytes then
     failwith "crash-restart: durable resume did not undercut cold re-fetch";
   if
     reparent.T.Sweep.cp_recover_ticks_max
     > 2 * max 1 durable.T.Sweep.cp_recover_ticks_max
   then
     failwith
       (Printf.sprintf
          "crash-restart: reparent heal too slow (max %d ticks vs durable %d)"
          reparent.T.Sweep.cp_recover_ticks_max
          durable.T.Sweep.cp_recover_ticks_max));
  if json then begin
    let path = "BENCH_PR5.json" in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n  \"config\": \"%s\",\n  \"crash_restart\": %s,\n  \"corruption\": %s%s\n}\n"
      (if smoke then "smoke" else "default")
      (T.Sweep.json_of_cr_points points)
      (T.Sweep.json_of_corruption corruption)
      (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

(* --- Anti-entropy drift sweep ----------------------------------------- *)

let run_anti_entropy ~smoke ~json () =
  let config =
    if smoke then T.Sweep.ae_smoke_config else T.Sweep.ae_default_config
  in
  let points = T.Sweep.anti_entropy ~config () in
  Eval.Report.print
    (Eval.Report.make
       ~title:"Anti-entropy: Merkle reconciliation vs cold re-fetch by drift"
       ~notes:
         [
           "a fraction of division replicas crash with unsynced journals, a";
           "burst of drift*employees updates lands while they are down, then";
           "they restart: Merkle mode walks root/branch/segment hashes and";
           "ships only drifted segments, cold mode re-fetches everything.";
           "expected: merkle bytes grow with drift, cold stays at full cost";
         ]
       ~columns:
         [
           "drift"; "updates"; "affected"; "merkle B"; "cold B"; "ratio";
           "m conv"; "c conv"; "m ticks"; "c ticks";
         ]
       ~rows:
         (List.map
            (fun (p : T.Sweep.ae_point) ->
              [
                Printf.sprintf "%.2f" p.T.Sweep.ap_drift;
                string_of_int p.T.Sweep.ap_updates;
                string_of_int p.T.Sweep.ap_affected;
                string_of_int p.T.Sweep.ap_merkle_bytes;
                string_of_int p.T.Sweep.ap_cold_bytes;
                Printf.sprintf "%.3f"
                  (float_of_int p.T.Sweep.ap_merkle_bytes
                  /. float_of_int (max 1 p.T.Sweep.ap_cold_bytes));
                string_of_int p.T.Sweep.ap_merkle_converged;
                string_of_int p.T.Sweep.ap_cold_converged;
                string_of_int p.T.Sweep.ap_merkle_ticks_max;
                string_of_int p.T.Sweep.ap_cold_ticks_max;
              ])
            points)
       ());
  List.iter
    (fun (p : T.Sweep.ae_point) ->
      if p.T.Sweep.ap_merkle_converged < p.T.Sweep.ap_affected then
        failwith
          (Printf.sprintf
             "anti-entropy: merkle run at drift %.2f left %d replicas diverged"
             p.T.Sweep.ap_drift
             (p.T.Sweep.ap_affected - p.T.Sweep.ap_merkle_converged));
      if p.T.Sweep.ap_cold_converged < p.T.Sweep.ap_affected then
        failwith
          (Printf.sprintf
             "anti-entropy: cold run at drift %.2f left %d replicas diverged"
             p.T.Sweep.ap_drift
             (p.T.Sweep.ap_affected - p.T.Sweep.ap_cold_converged)))
    points;
  (let headline =
     List.find (fun (p : T.Sweep.ae_point) -> p.T.Sweep.ap_drift = 0.1) points
   in
   let ratio =
     float_of_int headline.T.Sweep.ap_merkle_bytes
     /. float_of_int (max 1 headline.T.Sweep.ap_cold_bytes)
   in
   let cap = if smoke then 1.0 else 0.25 in
   if ratio >= cap then
     failwith
       (Printf.sprintf
          "anti-entropy: merkle/cold ratio %.3f at 10%% drift exceeds the \
           %.2f gate"
          ratio cap));
  if json then begin
    let path = "BENCH_PR6.json" in
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"config\": \"%s\",\n  \"anti_entropy\": %s%s\n}\n"
      (if smoke then "smoke" else "default")
      (T.Sweep.json_of_ae_points points)
      (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

(* --- Shard sweep ------------------------------------------------------ *)

module Shard_sweep = Ldap_shard.Sweep

let run_shard ~smoke ~json () =
  let config =
    if smoke then Shard_sweep.smoke_config else Shard_sweep.default_config
  in
  let points = Shard_sweep.run ~config () in
  Eval.Report.print
    (Eval.Report.make
       ~title:"Sharding: routed writes, covered reads, per-shard recovery"
       ~notes:
         [
           "per shard count a router distributes one enterprise directory over";
           "filter-described partitions: a write burst is booked into virtual";
           "per-shard service timelines (throughput = writes/makespan), the";
           "query mix is fanned over containment-derived shard covers, and one";
           "shard crashes and recovers from its WAL+snapshot while a consumer";
           "resumes its composite cookie (warm) vs re-fetching cold.";
         ]
       ~columns:
         [
           "shards"; "makespan"; "thru"; "speedup"; "1-blk cov"; "fanout";
           "ratio"; "plan hit"; "warm B"; "cold B"; "wal"; "recover";
         ]
       ~rows:
         (List.map
            (fun (p : Shard_sweep.point) ->
              [
                string_of_int p.Shard_sweep.sp_shards;
                string_of_int p.Shard_sweep.sp_makespan;
                Printf.sprintf "%.3f" p.Shard_sweep.sp_throughput;
                Printf.sprintf "%.2fx" p.Shard_sweep.sp_speedup;
                string_of_int p.Shard_sweep.sp_single_cover_max;
                Printf.sprintf "%.2f" p.Shard_sweep.sp_fanout_avg;
                Printf.sprintf "%.3f" p.Shard_sweep.sp_fanout_ratio;
                Printf.sprintf "%.2f" p.Shard_sweep.sp_plan_hit_ratio;
                string_of_int p.Shard_sweep.sp_warm_bytes;
                string_of_int p.Shard_sweep.sp_cold_bytes;
                string_of_int p.Shard_sweep.sp_wal_replayed;
                (if p.Shard_sweep.sp_recover_ok then "ok" else "FAIL");
              ])
            points)
       ());
  List.iter
    (fun (p : Shard_sweep.point) ->
      if p.Shard_sweep.sp_single_cover_max <> 1 then
        failwith
          (Printf.sprintf
             "shard: a single-block filter covered %d shards at %d shards"
             p.Shard_sweep.sp_single_cover_max p.Shard_sweep.sp_shards);
      if not p.Shard_sweep.sp_recover_ok then
        failwith
          (Printf.sprintf "shard: crash recovery diverged at %d shards"
             p.Shard_sweep.sp_shards);
      if p.Shard_sweep.sp_warm_bytes >= p.Shard_sweep.sp_cold_bytes then
        failwith
          (Printf.sprintf
             "shard: composite-cookie resume (%d B) not cheaper than cold \
              re-fetch (%d B) at %d shards"
             p.Shard_sweep.sp_warm_bytes p.Shard_sweep.sp_cold_bytes
             p.Shard_sweep.sp_shards))
    points;
  (match
     List.find_opt (fun (p : Shard_sweep.point) -> p.Shard_sweep.sp_shards = 4) points
   with
  | Some p when p.Shard_sweep.sp_speedup < 2.0 ->
      failwith
        (Printf.sprintf
           "shard: 4-shard write speedup %.2fx below the 2x gate"
           p.Shard_sweep.sp_speedup)
  | _ -> ());
  if json then begin
    let path = "BENCH_PR8.json" in
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"config\": \"%s\",\n  \"shard\": %s%s\n}\n"
      (if smoke then "smoke" else "default")
      (Shard_sweep.json_of_points points)
      (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

(* --- Paper-scale content-plane sweep ---------------------------------- *)

let run_scale ~smoke ~json () =
  let config =
    if smoke then T.Sweep.scale_smoke_config else T.Sweep.scale_default_config
  in
  let baseline, main = T.Sweep.scale ~config () in
  let row label (r : T.Sweep.scale_run) =
    [
      label;
      string_of_int r.T.Sweep.sr_entries;
      string_of_int r.T.Sweep.sr_leaves;
      string_of_int r.T.Sweep.sr_polls;
      Printf.sprintf "%.2f" (T.Sweep.scanned_per_poll r);
      string_of_int r.T.Sweep.sr_rescans;
      string_of_int r.T.Sweep.sr_resp_p99;
      string_of_int r.T.Sweep.sr_stale_p99;
      string_of_int r.T.Sweep.sr_stale_censored;
      string_of_int r.T.Sweep.sr_pending_max;
      string_of_int r.T.Sweep.sr_cursor_depth_max;
    ]
  in
  Eval.Report.print
    (Eval.Report.make
       ~title:"Paper-scale content plane: baseline vs full directory"
       ~notes:
         [
           "same topology (node tier + leaf fleet over the department filters),";
           "two directory sizes; incremental polls walk only the change spine, so";
           "scan/poll must track the update rate, not the directory size, and no";
           "poll may fall back to a full-content rescan";
         ]
       ~columns:
         [
           "run"; "entries"; "leaves"; "polls"; "scan/poll"; "rescans";
           "resp p99"; "stale p99"; "censored"; "pend max"; "cursor max";
         ]
       ~rows:[ row "baseline" baseline; row "full" main ]
       ());
  Eval.Report.print
    (Eval.Report.make ~title:"Full-directory heap vs leaf count"
       ~notes:
         [
           "live words after Gc.compact as leaves join one topology; replicas";
           "share interned entries, so growth must stay well under linear";
         ]
       ~columns:[ "leaves"; "live Mwords"; "VmRSS MB" ]
       ~rows:
         (List.map
            (fun (leaves, live, rss) ->
              [
                string_of_int leaves;
                Printf.sprintf "%.1f" (float_of_int live /. 1e6);
                (if rss = 0 then "n/a"
                 else Printf.sprintf "%.0f" (float_of_int rss /. 1024.));
              ])
            main.T.Sweep.sr_memory)
       ());
  (* Gates. *)
  List.iter
    (fun (label, (r : T.Sweep.scale_run)) ->
      if r.T.Sweep.sr_rescans > 0 then
        failwith
          (Printf.sprintf "scale: %s run fell back to %d full rescans" label
             r.T.Sweep.sr_rescans);
      if r.T.Sweep.sr_stale_samples = 0 then
        failwith (Printf.sprintf "scale: %s run sampled no staleness" label))
    [ ("baseline", baseline); ("full", main) ];
  let spp_base = T.Sweep.scanned_per_poll baseline in
  let spp_main = T.Sweep.scanned_per_poll main in
  if spp_main > Float.max 4.0 (2.0 *. spp_base) then
    failwith
      (Printf.sprintf
         "scale: %.2f spine entries scanned per poll at full size vs %.2f at \
          baseline — snapshot-diff serving is not O(diff)"
         spp_main spp_base);
  let leaf_ratio, live_ratio =
    match main.T.Sweep.sr_memory with
    | [] | [ _ ] -> (1.0, 1.0)
    | (l0, w0, _) :: _ ->
        let ln, wn, _ =
          List.nth main.T.Sweep.sr_memory
            (List.length main.T.Sweep.sr_memory - 1)
        in
        ( float_of_int ln /. float_of_int (max 1 l0),
          float_of_int wn /. float_of_int (max 1 w0) )
  in
  (* Linear growth from the first sample would multiply live words by
     the leaf ratio; shared content must keep it under half that
     slope. *)
  let allowed = 1.0 +. (0.5 *. (leaf_ratio -. 1.0)) in
  if live_ratio > allowed then
    failwith
      (Printf.sprintf
         "scale: live words grew %.2fx over a %.1fx leaf increase (cap \
          %.2fx) — replica memory is not sublinear in consumer count"
         live_ratio leaf_ratio allowed);
  if
    (not smoke)
    && main.T.Sweep.sr_serve_p99_us
       > 2.0 *. Float.max 50.0 baseline.T.Sweep.sr_serve_p99_us
  then
    failwith
      (Printf.sprintf
         "scale: p99 incremental serve time %.1fus at full size vs %.1fus \
          at baseline exceeds the 2x gate"
         main.T.Sweep.sr_serve_p99_us baseline.T.Sweep.sr_serve_p99_us);
  if main.T.Sweep.sr_resp_p99 > 2 * max 1 baseline.T.Sweep.sr_resp_p99 then
    failwith
      (Printf.sprintf
         "scale: p99 poll response %d ticks at full size vs %d at baseline \
          exceeds the 2x gate"
         main.T.Sweep.sr_resp_p99 baseline.T.Sweep.sr_resp_p99);
  Printf.printf
    "scale gates: rescans 0/0, scan-per-poll %.2f vs %.2f, live-words \
     %.2fx over %.1fx leaves (cap %.2fx)\n%!"
    spp_base spp_main live_ratio leaf_ratio allowed;
  if json then begin
    let path = "BENCH_PR9.json" in
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    out "{\n  \"config\": \"%s\",\n" (if smoke then "smoke" else "default");
    out "  \"baseline\": %s,\n"
      (T.Sweep.json_of_scale_run ~full:(not smoke) baseline);
    out "  \"scale\": %s,\n" (T.Sweep.json_of_scale_run ~full:(not smoke) main);
    out
      "  \"gates\": {\"rescans_zero\": true, \"scanned_per_poll_2x\": true, \
       \"memory_sublinear\": true, \"response_p99_2x\": true, \
       \"staleness_sampled\": true%s}"
      (if smoke then ""
       else
         Printf.sprintf
           ", \"serve_p99_2x\": true, \"scanned_per_poll_ratio\": %.3f, \
            \"live_words_ratio\": %.3f, \"leaf_ratio\": %.2f"
           (spp_main /. Float.max 0.001 spp_base)
           live_ratio leaf_ratio);
    out "%s\n}\n" (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

(* --- Adaptive replication under drift --------------------------------- *)

module Drift = Ldap_adaptive.Drift

let report_cell (r : Ldap_adaptive.Transition.report) =
  Printf.sprintf "%dk %dr %ds %dc -%d" r.kept r.rescoped r.seeded r.cold
    r.removed

let run_adapt ~smoke ~json () =
  let config = if smoke then Drift.smoke_config else Drift.default_config in
  let sweep = Drift.run ~config () in
  let phase_row mode (p : Drift.phase_point) =
    [
      mode;
      p.pp_name;
      string_of_int p.pp_queries;
      Printf.sprintf "%.2f" p.pp_head_hit;
      Printf.sprintf "%.2f" p.pp_tail_hit;
      string_of_int p.pp_update_bytes;
      string_of_int p.pp_transition_bytes;
      Printf.sprintf "%d (%d)" p.pp_adaptations p.pp_drift_adaptations;
      report_cell p.pp_report;
    ]
  in
  let run_rows label (r : Drift.run_result) =
    (* The join-mid-drift row is the joining replica's own phase; the
       primary's filters are frozen while it catches up. *)
    List.map
      (fun (p : Drift.phase_point) ->
        phase_row
          (if String.equal p.pp_name "join-mid-drift" then label ^ "-joiner"
           else label)
          p)
      r.rr_phases
  in
  Eval.Report.print
    (Eval.Report.make ~title:"Drift sweep: delta transitions vs cold swap"
       ~notes:
         [
           "five-phase scripted workload (warmup, flash crowd, geography";
           "flip, rename storm, replica joining mid-drift), identical seeds";
           "in both modes; head/tail are the phase's first-half and";
           "last-third hit ratios — recovery means the tail climbs back;";
           "plan column: kept / rescoped / seeded / cold installs, -removes";
         ]
       ~columns:
         [
           "run"; "phase"; "queries"; "head"; "tail"; "update B"; "trans B";
           "adapt (drift)"; "plan";
         ]
       ~rows:(run_rows "delta" sweep.Drift.sw_delta
              @ run_rows "cold" sweep.Drift.sw_cold)
       ());
  let bp_row label (p : Drift.bp_point) =
    [
      label;
      string_of_int p.bp_limit;
      string_of_int p.bp_updates;
      string_of_int p.bp_queue_peak;
      string_of_int p.bp_queue_total_after;
      string_of_int p.bp_overflows;
      string_of_int p.bp_resets;
      (if p.bp_escalated then "yes" else "no");
      (if p.bp_converged then "yes" else "no");
    ]
  in
  Eval.Report.print
    (Eval.Report.make ~title:"Persist backpressure: stalled leaf at the master"
       ~notes:
         [
           "a paused persist connection under a committed-update burst:";
           "within the bound the queue parks and drains on resume; past it";
           "the session is retired and reconnection escalates to a degraded";
           "resync — either way master memory stays O(bound)";
         ]
       ~columns:
         [
           "burst"; "limit"; "updates"; "peak"; "after"; "overflows";
           "resets"; "escalated"; "converged";
         ]
       ~rows:
         [
           bp_row "within-bound" sweep.Drift.sw_bp_stall;
           bp_row "overflow" sweep.Drift.sw_bp_overflow;
         ]
       ());
  (* Gates. *)
  let g = sweep.Drift.sw_gates in
  let geo r = (Drift.find_phase r "geo-flip").Drift.pp_transition_bytes in
  if not g.Drift.g_geo_delta_le_half_cold then
    failwith
      (Printf.sprintf
         "adapt: geo-flip delta transition shipped %d B vs %d B cold — over \
          the 50%% gate"
         (geo sweep.Drift.sw_delta)
         (geo sweep.Drift.sw_cold));
  if not g.Drift.g_hit_ratio_recovers then
    failwith "adapt: a drift phase's tail hit ratio did not recover";
  if not g.Drift.g_queue_bounded then
    failwith "adapt: stalled-leaf persist queue was not bounded at the master";
  if not g.Drift.g_no_failed_installs then
    failwith "adapt: a transition plan left failed installs";
  let lh_config =
    if smoke then Drift.lh_smoke_config else Drift.lh_default_config
  in
  let lh = Drift.run_long_haul lh_config in
  if not (Drift.lh_gates_pass lh_config lh) then
    failwith ("adapt: long-haul gates failed: " ^ Drift.json_of_lh lh_config lh);
  Printf.printf
    "adapt gates: geo-flip delta %d B <= 50%% of cold %d B, tails recovered, \
     queue peak %d <= %d+1, long-haul converged %d/%d\n%!"
    (geo sweep.Drift.sw_delta)
    (geo sweep.Drift.sw_cold)
    sweep.Drift.sw_bp_overflow.Drift.bp_queue_peak
    sweep.Drift.sw_bp_overflow.Drift.bp_limit lh.Drift.lh_converged
    lh.Drift.lh_participants;
  if json then begin
    let path = "BENCH_PR10.json" in
    let oc = open_out path in
    let body = Drift.json_of_sweep sweep in
    (* Splice the long-haul point and (full runs) peak RSS into the
       sweep object: drop its closing "\n}". *)
    let body = String.sub body 0 (String.length body - 2) in
    Printf.fprintf oc "%s,\n  \"long_haul\": %s%s\n}\n" body
      (Drift.json_of_lh lh_config lh)
      (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

let run_scale_long_haul ~smoke ~json () =
  ignore json;
  let config =
    if smoke then Drift.lh_smoke_config else Drift.lh_default_config
  in
  let p = Drift.run_long_haul config in
  Eval.Report.print
    (Eval.Report.make
       ~title:"Long-haul write pressure: history HWM + persist queue bounds"
       ~notes:
         [
           "a long committed-update stream with one leaf that never polls";
           "(history HWM must escalate it) and a persist leaf that stops";
           "draining (queue must overflow); both buffers stay within one";
           "action of their bounds and every participant reconverges";
         ]
       ~columns:
         [
           "updates"; "hist limit"; "q limit"; "hist ovf"; "push ovf";
           "pend max"; "push peak"; "converged";
         ]
       ~rows:
         [
           [
             string_of_int p.Drift.lh_committed;
             string_of_int config.Drift.lh_history_limit;
             string_of_int config.Drift.lh_queue_limit;
             string_of_int p.Drift.lh_history_overflows;
             string_of_int p.Drift.lh_push_overflows;
             string_of_int p.Drift.lh_pending_max_seen;
             string_of_int p.Drift.lh_push_peak;
             Printf.sprintf "%d/%d" p.Drift.lh_converged
               p.Drift.lh_participants;
           ];
         ]
       ());
  if not (Drift.lh_gates_pass config p) then
    failwith
      ("scale --long-haul: gates failed: " ^ Drift.json_of_lh config p);
  Printf.printf
    "long-haul gates: %d history + %d push overflows, pending max %d <= \
     %d+1, push peak %d <= %d+1, converged %d/%d\n%!"
    p.Drift.lh_history_overflows p.Drift.lh_push_overflows
    p.Drift.lh_pending_max_seen config.Drift.lh_history_limit
    p.Drift.lh_push_peak config.Drift.lh_queue_limit p.Drift.lh_converged
    p.Drift.lh_participants

(* --- Compiled vs interpreted hot paths -------------------------------- *)

(* A spread of entries for the filter-eval pair: half match the complex
   filter's sn disjunction, ages straddle its >=30 bound, and the last
   entry lacks most attributes (the absent-attribute path). *)
let eval_entries =
  List.init 64 (fun i ->
      let cn = Printf.sprintf "e%02d" i in
      Entry.make
        (Dn.child_ava base_dn "cn" cn)
        [
          ("objectclass", [ "inetOrgPerson" ]);
          ("cn", [ cn ]);
          ("sn", [ (if i mod 2 = 0 then "Doe" else "smith") ]);
          ("age", [ string_of_int (15 + i) ]);
          ("serialNumber", [ Printf.sprintf "%07d" i ]);
        ])
  @ [ Entry.make (Dn.child_ava base_dn "cn" "bare") [ ("cn", [ "bare" ]) ] ]

let micro7_filters = [ serial_filter; dept_filter; prefix_filter; complex_filter ]

(* The pre-writer string-combinator entry encoder, reconstructed as the
   interpreted codec baseline: one intermediate string per nesting
   level, which is exactly the cost the backwards writer removes.  The
   equivalence pass checks it byte-identical to the writer image. *)
let str_tlv tag body =
  let len = String.length body in
  let header =
    if len < 0x80 then Printf.sprintf "%c%c" (Char.chr tag) (Char.chr len)
    else begin
      let rec go n acc =
        if n = 0 then acc
        else go (n lsr 8) (String.make 1 (Char.chr (n land 0xff)) ^ acc)
      in
      let bytes = go len "" in
      Printf.sprintf "%c%c%s" (Char.chr tag)
        (Char.chr (0x80 lor String.length bytes))
        bytes
    end
  in
  header ^ body

let str_entry e =
  let attrs =
    String.concat ""
      (List.map
         (fun (name, vs) ->
           str_tlv 0x30
             (str_tlv 0x04 name
             ^ str_tlv 0x31 (String.concat "" (List.map (str_tlv 0x04) vs))))
         (Entry.attributes e))
  in
  str_tlv 0x64 (str_tlv 0x04 (Dn.to_string (Entry.dn e)) ^ str_tlv 0x30 attrs)

let run_micro7 ~smoke ~json () =
  (* Equivalence first: the compiled paths must agree with the
     interpreted oracles on every fixture.  The counts are
     deterministic, so the smoke JSON is diffable across runs. *)
  let filter_cases = ref 0 and filter_agree = ref 0 in
  List.iter
    (fun f ->
      let m = Filter.matcher schema f in
      List.iter
        (fun e ->
          incr filter_cases;
          if Bool.equal (Filter.matches schema f e) (m e) then incr filter_agree)
        (fixture_entry :: eval_entries))
    micro7_filters;
  let codec_cases = ref 0 and codec_identical = ref 0 in
  let w = Compile.Wbuf.create () in
  List.iter
    (fun e ->
      incr codec_cases;
      let s = str_entry e in
      Compile.Wbuf.clear w;
      Ber_codec.Der.W.entry w e;
      if String.equal s (Compile.Wbuf.contents w) then incr codec_identical)
    (fixture_entry :: eval_entries);
  let staged_condition = C.Symbolic.Compiled.compile schema compiled_condition in
  let sym_cases = ref 0 and sym_agree = ref 0 in
  List.iter
    (fun (l, r) ->
      incr sym_cases;
      if
        Bool.equal
          (C.Symbolic.eval schema compiled_condition ~left:[| l |] ~right:[| r |])
          (C.Symbolic.Compiled.eval staged_condition ~left:[| l |] ~right:[| r |])
      then incr sym_agree)
    [ ("0400456", "04004"); ("0400456", "05"); ("123", "123"); ("", "0") ];
  if !filter_agree <> !filter_cases then
    failwith "micro: compiled filter disagrees with interpreted matches";
  if !codec_identical <> !codec_cases then
    failwith "micro: writer codec image differs from string combinators";
  if !sym_agree <> !sym_cases then
    failwith "micro: staged containment condition disagrees with Symbolic.eval";
  (* Timings: interpreted and compiled forms of the same work, measured
     in the same process by the same harness. *)
  let filter_matcher = Filter.matcher schema complex_filter in
  let pairs =
    [
      ( "filter/eval",
        (fun () ->
          List.iter
            (fun e -> ignore (Filter.matches schema complex_filter e : bool))
            eval_entries),
        fun () -> List.iter (fun e -> ignore (filter_matcher e : bool)) eval_entries
      );
      ( "containment/eval (Prop 2)",
        (fun () ->
          ignore
            (C.Symbolic.eval schema compiled_condition ~left:[| "0400456" |]
               ~right:[| "04004" |]
              : bool)),
        fun () ->
          ignore
            (C.Symbolic.Compiled.eval staged_condition ~left:[| "0400456" |]
               ~right:[| "04004" |]
              : bool) );
      ( "codec/encode entry",
        (fun () -> ignore (str_entry fixture_entry : string)),
        fun () ->
          Compile.Wbuf.clear w;
          Ber_codec.Der.W.entry w fixture_entry );
    ]
  in
  let timed =
    List.map
      (fun (name, interp, comp) ->
        let fi = measure interp and fc = measure comp in
        (name, fi, fc, fi.ns /. fc.ns))
      pairs
  in
  Eval.Report.print
    (Eval.Report.make ~title:"Compiled vs interpreted hot paths"
       ~notes:
         [
           "same work, same process: the interpreted column re-walks the filter";
           "AST / string combinators per call, the compiled column runs the";
           "bytecode program, staged condition or reused writer buffer";
         ]
       ~columns:[ "path"; "interpreted ns"; "compiled ns"; "speedup"; "r^2 (i/c)" ]
       ~rows:
         (List.map
            (fun (name, fi, fc, s) ->
              [
                name;
                Printf.sprintf "%.1f" fi.ns;
                Printf.sprintf "%.1f" fc.ns;
                Printf.sprintf "%.1fx" s;
                Printf.sprintf "%.3f/%.3f" fi.r2 fc.r2;
              ])
            timed)
       ());
  let speedup_of name =
    let _, _, _, s = List.find (fun (n, _, _, _) -> String.equal n name) timed in
    s
  in
  let filter_floor = if smoke then 2.0 else 10.0 in
  let s = speedup_of "filter/eval" in
  if s < filter_floor then
    failwith
      (Printf.sprintf "micro: filter/eval speedup %.1fx below the %.1fx floor" s
         filter_floor);
  (if not smoke then
     let c = speedup_of "codec/encode entry" in
     if c < 1.5 then
       failwith (Printf.sprintf "micro: codec speedup %.1fx below the 1.5x floor" c));
  (* End-to-end context for the full run: the PR 2 fan-out sweep and a
     latency/staleness sweep, both now running over the compiled paths
     (predicate-index dispatch, compiled session matchers, writer
     journalling). *)
  let fanout = if smoke then [] else run_fanout () in
  let lat =
    if smoke then []
    else T.Sweep.latency_staleness ~config:T.Sweep.lat_smoke_config ()
  in
  if json then begin
    let path = "BENCH_PR7.json" in
    let oc = open_out path in
    let out fmt = Printf.fprintf oc fmt in
    out "{\n  \"config\": \"%s\",\n" (if smoke then "smoke" else "default");
    out
      "  \"equivalence\": {\"filter_cases\": %d, \"filter_agree\": %d, \
       \"codec_cases\": %d, \"codec_identical\": %d, \"symbolic_cases\": %d, \
       \"symbolic_agree\": %d}"
      !filter_cases !filter_agree !codec_cases !codec_identical !sym_cases
      !sym_agree;
    if not smoke then begin
      out ",\n  \"micro\": [\n";
      List.iteri
        (fun i (name, fi, fc, s) ->
          out
            "    {\"name\": \"%s\", \"interpreted_ns\": %.1f, \"compiled_ns\": \
             %.1f, \"speedup\": %.2f, \"interpreted_r2\": %.4f, \
             \"compiled_r2\": %.4f}%s\n"
            (json_escape name) fi.ns fc.ns s fi.r2 fc.r2
            (if i = List.length timed - 1 then "" else ","))
        timed;
      out "  ],\n  \"fanout\": [\n";
      List.iteri
        (fun i (sessions, routed, naive) ->
          out
            "    {\"sessions\": %d, \"routed_ns_per_update\": %.1f, \
             \"naive_ns_per_update\": %.1f, \"speedup\": %.2f}%s\n"
            sessions routed naive (naive /. routed)
            (if i = List.length fanout - 1 then "" else ","))
        fanout;
      out "  ],\n  \"latency_staleness\": %s" (T.Sweep.json_of_lat_points lat)
    end;
    out "%s\n}\n" (rss_fragment ~smoke);
    close_out oc;
    Printf.printf "wrote %s\n%!" path
  end

(* --- Entry point ------------------------------------------------------ *)

let smoke () =
  Eval.Report.print (Eval.Figures.figure2 ());
  Eval.Report.print (Eval.Figures.figure3 ());
  Eval.Report.print
    (Eval.Figures.lossy_sync ~rates:[ 0.0; 0.2 ] ~updates:200 ~employees:800
       ~filters:4 ());
  (* The paper-scale sweep, scaled down: every runtest exercises the
     content plane end to end, gates included. *)
  run_scale ~smoke:true ~json:false ()

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro-only" args in
  let figures_only = List.mem "--figures-only" args in
  if List.mem "tree-fanout" args then
    run_tree_fanout
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "latency-staleness" args then
    run_latency_staleness
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "crash-restart" args then
    run_crash_restart
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "anti-entropy" args then
    run_anti_entropy
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "shard" args then
    run_shard
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "scale" args then
    (if List.mem "--long-haul" args then run_scale_long_haul else run_scale)
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "adapt" args then
    run_adapt
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "micro" args then
    run_micro7
      ~smoke:(quick || List.mem "--smoke" args)
      ~json:(List.mem "--json" args) ()
  else if List.mem "--smoke" args then smoke ()
  else if List.mem "--json" args then begin
    let micro = run_micro () in
    let fanout = run_fanout () in
    write_json ~path:"BENCH_PR2.json" ~micro ~fanout
  end
  else begin
    if not micro_only then Eval.Figures.all ~quick ();
    if not figures_only then begin
      ignore (run_micro ());
      ignore (run_fanout ())
    end
  end
