(* Benchmark harness.

   Two halves:
   1. Experiment regeneration: every table and figure of the paper's
      evaluation (section 7), the protocol illustrations (Figures 2-3)
      and the section 5.2 history ablation, printed as ASCII tables by
      Ldap_eval.Figures.
   2. Bechamel micro-benchmarks backing the section 7.4 claims about
      query-processing cost: template vs general containment, index
      lookup cost as the number of stored filters grows, plus substrate
      primitives (filter parse/eval, DN algebra, indexed search).

   Usage: main.exe [--quick] [--micro-only | --figures-only | --smoke]

   --smoke runs a seconds-scale deterministic subset (the protocol
   illustrations plus a tiny lossy-network sweep) and is wired into
   the default test alias as an end-to-end exercise of the bench
   harness. *)

open Bechamel
open Ldap
module C = Ldap_containment
module Eval = Ldap_eval

(* --- Micro-benchmark fixtures ---------------------------------------- *)

let schema = Schema.default

let fixture_entry =
  Entry.make
    (Dn.of_string_exn "cn=john doe 0456,c=aa,o=xyz")
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ "john doe 0456" ]);
      ("sn", [ "doe" ]);
      ("serialNumber", [ "0400456" ]);
      ("mail", [ "jd8f3a21@aa.xyz.com" ]);
      ("departmentNumber", [ "2406" ]);
      ("age", [ "42" ]);
    ]

let serial_filter = Filter.of_string_exn "(serialNumber=0400456)"
let dept_filter = Filter.of_string_exn "(&(departmentNumber=2406)(divisionNumber=24))"
let prefix_filter = Filter.of_string_exn "(serialNumber=04004*)"
let complex_filter =
  Filter.of_string_exn "(&(objectclass=inetOrgPerson)(|(sn=doe)(sn=smith))(age>=30))"

let filter_string = "(&(objectclass=inetOrgPerson)(|(sn=doe)(sn=smith))(age>=30))"

let dn_string = "cn=john doe 0456,ou=research,c=us,o=xyz"
let base_dn = Dn.of_string_exn "o=xyz"
let deep_dn = Dn.of_string_exn dn_string

(* A populated index with [n] stored serial-prefix queries, plus one
   query that hits and one that misses. *)
let make_index n =
  let index = C.Containment_index.create schema in
  for i = 0 to n - 1 do
    let filter = Filter.of_string_exn (Printf.sprintf "(serialNumber=%05d*)" i) in
    C.Containment_index.add index (Query.make ~base:base_dn filter) i
  done;
  index

let hit_query n = Query.make ~base:base_dn
    (Filter.of_string_exn (Printf.sprintf "(serialNumber=%05d99)" (n / 2)))

let miss_query = Query.make ~base:base_dn (Filter.of_string_exn "(serialNumber=99999x)")

let compiled_condition =
  let left = C.Template.of_string_exn "(serialnumber=_)" in
  let right = C.Template.of_string_exn "(serialnumber=_*)" in
  match C.Symbolic.compile schema ~left ~right with
  | Some c -> c
  | None -> failwith "compile failed"

let small_backend =
  let b = Backend.create ~indexed:[ "serialnumber" ] schema in
  (match
     Backend.add_context b
       (Entry.make base_dn [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ])
   with
  | Ok () -> ()
  | Error e -> failwith e);
  for i = 0 to 4999 do
    let cn = Printf.sprintf "p%05d" i in
    let e =
      Entry.make
        (Dn.child_ava base_dn "cn" cn)
        [
          ("objectclass", [ "inetOrgPerson" ]);
          ("cn", [ cn ]); ("sn", [ cn ]);
          ("serialNumber", [ Printf.sprintf "%07d" i ]);
        ]
    in
    match Backend.apply b (Update.add e) with
    | Ok _ -> ()
    | Error msg -> failwith msg
  done;
  b

let indexed_search_query =
  Query.make ~base:base_dn (Filter.of_string_exn "(serialNumber=0002500)")

let micro_tests =
  let open Staged in
  [
    Test.make ~name:"filter/parse" (stage (fun () -> Filter.of_string_exn filter_string));
    Test.make ~name:"filter/eval" (stage (fun () -> Filter.matches schema complex_filter fixture_entry));
    Test.make ~name:"filter/normalize" (stage (fun () -> Filter.normalize complex_filter));
    Test.make ~name:"dn/parse" (stage (fun () -> Dn.of_string_exn dn_string));
    Test.make ~name:"dn/ancestor" (stage (fun () -> Dn.ancestor_of base_dn deep_dn));
    Test.make ~name:"containment/same-template (Prop 3)"
      (stage (fun () -> C.Filter_containment.contained schema serial_filter serial_filter));
    Test.make ~name:"containment/cross-template compiled (Prop 2)"
      (stage (fun () ->
           C.Symbolic.eval schema compiled_condition ~left:[| "0400456" |] ~right:[| "04004" |]));
    Test.make ~name:"containment/general (Prop 1)"
      (stage (fun () -> C.Filter_containment.contained_general schema serial_filter prefix_filter));
    Test.make ~name:"containment/general conjunctive"
      (stage (fun () -> C.Filter_containment.contained_general schema dept_filter dept_filter));
    Test.make ~name:"backend/indexed search"
      (stage (fun () -> Backend.search small_backend indexed_search_query));
  ]

let index_tests =
  List.concat_map
    (fun n ->
      let index = make_index n in
      let hit = hit_query n in
      [
        Test.make ~name:(Printf.sprintf "index/find hit (%d filters)" n)
          (Staged.stage (fun () -> C.Containment_index.find_container index hit));
        Test.make ~name:(Printf.sprintf "index/find miss (%d filters)" n)
          (Staged.stage (fun () -> C.Containment_index.find_container index miss_query));
      ])
    [ 50; 200; 800 ]

let run_micro () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let test = Test.make_grouped ~name:"micro" (micro_tests @ index_tests) in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (v :: _) -> Printf.sprintf "%.1f" v
          | Some [] | None -> "n/a"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some v -> Printf.sprintf "%.4f" v
          | None -> "n/a"
        in
        [ name; ns; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Eval.Report.print
    (Eval.Report.make ~title:"Micro-benchmarks (section 7.4 processing costs)"
       ~notes:
         [
           "template-based containment (Props 2-3) should be far cheaper than the";
           "general Prop 1 procedure; index lookups should scale with filter count";
         ]
       ~columns:[ "benchmark"; "ns/run"; "r^2" ] ~rows ())

(* --- Entry point ------------------------------------------------------ *)

let smoke () =
  Eval.Report.print (Eval.Figures.figure2 ());
  Eval.Report.print (Eval.Figures.figure3 ());
  Eval.Report.print
    (Eval.Figures.lossy_sync ~rates:[ 0.0; 0.2 ] ~updates:200 ~employees:800
       ~filters:4 ())

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro-only" args in
  let figures_only = List.mem "--figures-only" args in
  if List.mem "--smoke" args then smoke ()
  else begin
    if not micro_only then Eval.Figures.all ~quick ();
    if not figures_only then run_micro ()
  end
