(* Tests for the protocol extensions: server-side sorting (RFC 2891),
   the compare operation, replica-as-server endpoints, per-filter sync
   classes, and persist-mode connection accounting. *)
open Ldap
module Resync = Ldap_resync
module R = Ldap_replication

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn
let must = function Ok x -> x | Error e -> failwith e

(* --- Sort control ------------------------------------------------------- *)

let person name age =
  Entry.make
    (dn (Printf.sprintf "cn=%s,o=x" name))
    [ ("objectclass", [ "inetOrgPerson" ]); ("cn", [ name ]); ("sn", [ name ]);
      ("age", [ string_of_int age ]) ]

let test_sort_single_key () =
  let entries = [ person "carol" 30; person "alice" 50; person "bob" 40 ] in
  let by_sn = Sort_control.sort schema ~keys:[ Sort_control.key "sn" ] entries in
  Alcotest.(check (list string)) "ascending sn" [ "alice"; "bob"; "carol" ]
    (List.map (fun e -> List.hd (Entry.get e "sn")) by_sn);
  let by_age_desc =
    Sort_control.sort schema ~keys:[ Sort_control.key ~reverse:true "age" ] entries
  in
  Alcotest.(check (list string)) "descending age" [ "alice"; "bob"; "carol" ]
    (List.map (fun e -> List.hd (Entry.get e "sn")) by_age_desc)

let test_sort_numeric_not_lexicographic () =
  let entries = [ person "a" 9; person "b" 10; person "c" 100 ] in
  let sorted = Sort_control.sort schema ~keys:[ Sort_control.key "age" ] entries in
  Alcotest.(check (list string)) "integer order" [ "9"; "10"; "100" ]
    (List.map (fun e -> List.hd (Entry.get e "age")) sorted)

let test_sort_missing_last () =
  let no_age =
    Entry.make (dn "cn=zed,o=x")
      [ ("objectclass", [ "person" ]); ("cn", [ "zed" ]); ("sn", [ "zed" ]) ]
  in
  let sorted =
    Sort_control.sort schema ~keys:[ Sort_control.key "age" ]
      [ no_age; person "a" 10 ]
  in
  Alcotest.(check string) "missing sorts last" "zed"
    (List.hd (Entry.get (List.nth sorted 1) "sn"))

let test_sort_multiple_keys () =
  let e name sn age =
    Entry.make (dn (Printf.sprintf "cn=%s,o=x" name))
      [ ("objectclass", [ "person" ]); ("cn", [ name ]); ("sn", [ sn ]);
        ("age", [ string_of_int age ]) ]
  in
  let entries = [ e "x" "doe" 40; e "y" "doe" 20; e "z" "abel" 60 ] in
  let sorted =
    Sort_control.sort schema
      ~keys:[ Sort_control.key "sn"; Sort_control.key "age" ] entries
  in
  Alcotest.(check (list string)) "sn then age" [ "z"; "y"; "x" ]
    (List.map (fun en -> List.hd (Entry.get en "cn")) sorted)

let test_sort_keys_of_string () =
  (match Sort_control.keys_of_string "sn,-age" with
  | Ok [ a; b ] ->
      check_bool "first" true (a.Sort_control.attr = "sn" && not a.Sort_control.reverse);
      check_bool "second" true (b.Sort_control.attr = "age" && b.Sort_control.reverse)
  | _ -> Alcotest.fail "parse failed");
  check_bool "empty rejected" true (Result.is_error (Sort_control.keys_of_string "sn,,x"));
  check_bool "bare dash rejected" true (Result.is_error (Sort_control.keys_of_string "-"))

(* --- Compare operation --------------------------------------------------- *)

let make_backend () =
  let b = Backend.create schema in
  must
    (Backend.add_context b
       (Entry.make (dn "o=x") [ ("objectclass", [ "organization" ]); ("o", [ "x" ]) ]));
  ignore (must (Backend.apply b (Update.Add (person "alice" 30))));
  b

let test_compare () =
  let b = make_backend () in
  check_bool "true assertion" true
    (must (Backend.compare_values b (dn "cn=alice,o=x") ~attr:"age" ~value:"30"));
  check_bool "matching rule" true
    (must (Backend.compare_values b (dn "cn=alice,o=x") ~attr:"sn" ~value:"ALICE"));
  check_bool "false assertion" false
    (must (Backend.compare_values b (dn "cn=alice,o=x") ~attr:"age" ~value:"31"));
  check_bool "absent attr is false" false
    (must (Backend.compare_values b (dn "cn=alice,o=x") ~attr:"mail" ~value:"x"));
  check_bool "missing entry errors" true
    (Result.is_error (Backend.compare_values b (dn "cn=zz,o=x") ~attr:"age" ~value:"1"));
  let server = Server.create ~name:"s" b in
  check_bool "server compare" true
    (must (Server.handle_compare server (dn "cn=alice,o=x") ~attr:"age" ~value:"30"))

(* --- Replica server -------------------------------------------------------- *)

let test_replica_server_end_to_end () =
  let b = make_backend () in
  ignore (must (Backend.apply b (Update.Add (person "bob" 40))));
  let master = Resync.Master.create b in
  let net = Network.create () in
  Network.add_server net (Server.create ~name:"hq" b);
  let replica = R.Filter_replica.create master in
  must (R.Filter_replica.install_filter replica (Query.make ~base:(dn "o=x") (f "(sn=alice)")));
  R.Replica_server.register
    (R.Replica_server.of_filter_replica ~master_host:"hq" replica)
    net ~name:"branch";
  Network.reset_stats net;
  (* Contained query: answered at the branch in one round trip. *)
  (match Network.search net ~from:"branch" (Query.make ~base:(dn "o=x") (f "(sn=alice)")) with
  | Ok [ e ] -> check_bool "alice" true (Entry.has_value e "sn" "alice")
  | Ok l -> Alcotest.failf "expected 1, got %d" (List.length l)
  | Error e -> Alcotest.fail e);
  check_int "one round trip" 1 (Network.stats net).Network.round_trips;
  (* Uncontained query: chased to hq, still correct. *)
  Network.reset_stats net;
  (match Network.search net ~from:"branch" (Query.make ~base:(dn "o=x") (f "(sn=bob)")) with
  | Ok [ e ] -> check_bool "bob" true (Entry.has_value e "sn" "bob")
  | Ok l -> Alcotest.failf "expected 1, got %d" (List.length l)
  | Error e -> Alcotest.fail e);
  check_int "two round trips" 2 (Network.stats net).Network.round_trips

(* --- Per-filter sync classes (section 3.2) -------------------------------- *)

let test_sync_where () =
  let b = make_backend () in
  ignore (must (Backend.apply b (Update.Add (person "bob" 40))));
  let master = Resync.Master.create b in
  let replica = R.Filter_replica.create master in
  let q_alice = Query.make ~base:(dn "o=x") (f "(sn=alice)") in
  let q_bob = Query.make ~base:(dn "o=x") (f "(sn=bob)") in
  must (R.Filter_replica.install_filter replica q_alice);
  must (R.Filter_replica.install_filter replica q_bob);
  (* Both entries change at the master. *)
  ignore
    (must (Backend.apply b (Update.modify (dn "cn=alice,o=x") [ Update.replace_values "age" [ "31" ] ])));
  ignore
    (must (Backend.apply b (Update.modify (dn "cn=bob,o=x") [ Update.replace_values "age" [ "41" ] ])));
  (* Only the alice filter is in the high-consistency class. *)
  R.Filter_replica.sync_where replica (fun q -> Query.equal q q_alice);
  let stats = R.Filter_replica.stats replica in
  check_int "only one entry synced" 1 stats.R.Stats.sync_entries;
  (match R.Filter_replica.answer replica q_alice with
  | R.Replica.Answered [ e ] -> check_bool "fresh" true (Entry.has_value e "age" "31")
  | _ -> Alcotest.fail "expected hit");
  match R.Filter_replica.answer replica q_bob with
  | R.Replica.Answered [ e ] ->
      check_bool "stale until its class syncs" true (Entry.has_value e "age" "40")
  | _ -> Alcotest.fail "expected hit"

(* --- Persist connections ---------------------------------------------------- *)

let test_persistent_count () =
  let b = make_backend () in
  let master = Resync.Master.create b in
  check_int "none" 0 (Resync.Master.persistent_count master);
  (match
     Resync.Master.handle master ~push:(Resync.Protocol.push_of_fn (fun _ -> ()))
       { Resync.Protocol.mode = Resync.Protocol.Persist; cookie = None }
       (Query.make ~base:(dn "o=x") (f "(sn=alice)"))
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match
     Resync.Master.handle master
       { Resync.Protocol.mode = Resync.Protocol.Poll; cookie = None }
       (Query.make ~base:(dn "o=x") (f "(sn=bob)"))
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  check_int "sessions" 2 (Resync.Master.session_count master);
  check_int "one standing connection" 1 (Resync.Master.persistent_count master)

let suite =
  [
    Alcotest.test_case "sort single key" `Quick test_sort_single_key;
    Alcotest.test_case "sort numeric" `Quick test_sort_numeric_not_lexicographic;
    Alcotest.test_case "sort missing last" `Quick test_sort_missing_last;
    Alcotest.test_case "sort multiple keys" `Quick test_sort_multiple_keys;
    Alcotest.test_case "sort keys parse" `Quick test_sort_keys_of_string;
    Alcotest.test_case "compare operation" `Quick test_compare;
    Alcotest.test_case "replica server end to end" `Quick test_replica_server_end_to_end;
    Alcotest.test_case "sync_where classes" `Quick test_sync_where;
    Alcotest.test_case "persistent count" `Quick test_persistent_count;
  ]
