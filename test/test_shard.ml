(* Tests for the shard subsystem: partition key mapping, cover
   correctness and plan caching, routed writes and ownership moves,
   fanned-out searches and ReSync sessions through the router, the
   composite-cookie resume discipline across partial fan-out failures
   (a consumer never acknowledges a shard CSN it has not applied),
   Merkle anti-entropy through the router, per-shard crash recovery,
   and a router-vs-single-master equivalence property across all
   three history strategies. *)
open Ldap
module Partition = Ldap_shard.Partition
module Shard_master = Ldap_shard.Shard_master
module Router = Ldap_shard.Router
module Protocol = Ldap_resync.Protocol
module Master = Ldap_resync.Master
module Consumer = Ldap_resync.Consumer
module Transport = Ldap_resync.Transport
module Content = Ldap_resync.Content
module Containment = Ldap_containment.Filter_containment
module Medium = Ldap_store.Medium

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn
let must = function Ok v -> v | Error e -> failwith e

(* --- A miniature geographically blocked directory ----------------------
   o=shard holds one OU per country; employees carry serial numbers
   whose two-digit prefix is the country's block, mirroring the dirgen
   layout at test size. *)

let root = dn "o=shard"

let org =
  Entry.make root [ ("objectclass", [ "organization" ]); ("o", [ "shard" ]) ]

let country_dn c = dn (Printf.sprintf "ou=c%d,o=shard" c)

let country_entry c =
  Entry.make (country_dn c)
    [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ Printf.sprintf "c%d" c ]) ]

let serial b n = Printf.sprintf "%02d%03d" b n
let emp_dn c n = dn (Printf.sprintf "cn=p%d-%d,ou=c%d,o=shard" c n c)

let employee ?(dept = "100") ?block ~country ~n () =
  let block = Option.value block ~default:country in
  let name = Printf.sprintf "p%d-%d" country n in
  Entry.make (emp_dn country n)
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]);
      ("sn", [ name ]);
      ("serialNumber", [ serial block n ]);
      ("departmentNumber", [ dept ]);
    ]

let build_source ~countries ~per =
  let b = Backend.create ~indexed:[ "serialnumber" ] schema in
  must (Backend.add_context b org);
  for c = 0 to countries - 1 do
    ignore (must (Backend.apply b (Update.add (country_entry c))));
    for n = 0 to per - 1 do
      let dept = if n mod 2 = 0 then "100" else "200" in
      ignore (must (Backend.apply b (Update.add (employee ~dept ~country:c ~n ()))))
    done
  done;
  b

let blocks countries =
  Array.init countries (fun c -> (Printf.sprintf "%02d" c, Some (country_dn c)))

let make_partition ?(countries = 4) ~shards () =
  Partition.create schema ~shards ~blocks:(blocks countries)

(* A router over a fresh source backend.  The source stays the oracle:
   every mutation a test routes is also applied to it directly. *)
let make_router ?(countries = 4) ?(per = 3) ?strategy ~shards () =
  let source = build_source ~countries ~per in
  let partition = make_partition ~countries ~shards () in
  let transport =
    Transport.create ~faults:(Network.Faults.create ()) (Network.create ())
  in
  let masters =
    Array.init shards (fun i -> Shard_master.create ?strategy schema ~id:i)
  in
  let router = Router.create partition transport masters in
  must (Router.seed_from_backend router source);
  (router, transport, source)

let canon entries =
  List.sort (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b)) entries

(* Every backend stamps post-images with its own committing CSN as
   modifyTimestamp, so shard-local copies never match the oracle's
   verbatim: compare modulo that operational attribute. *)
let untimed e = Entry.replace_values e "modifytimestamp" [ "0" ]

let entries_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> Entry.equal (untimed x) (untimed y))
       (canon a) (canon b)

let oracle_search source q =
  match Backend.search source q with
  | Ok { Backend.entries; _ } -> entries
  | Error _ -> failwith "oracle search failed"

let search_matches_oracle router source q =
  entries_equal (must (Router.search router q)) (oracle_search source q)

let consumer_matches_oracle consumer source =
  entries_equal (Consumer.entries consumer)
    (Content.current source (Consumer.query consumer))

let sync_router consumer transport router =
  match Consumer.sync_over consumer transport ~host:(Router.host router) with
  | Ok outcome -> outcome.Consumer.reply
  | Error e -> failwith (Consumer.sync_error_to_string e)

let route_apply router source op =
  let r = Router.apply router op in
  let o = Backend.apply source op in
  (match (r, o) with
  | Ok _, Ok _ | Error _, Error _ -> ()
  | Ok _, Error e -> failwith ("router succeeded where oracle failed: " ^ e)
  | Error e, Ok _ -> failwith ("router failed where oracle succeeded: " ^ e));
  r

let serial_query b =
  Query.make ~base:root (f (Printf.sprintf "(serialNumber=%02d*)" b))

let broadcast_query = Query.make ~base:root (f "(objectclass=inetOrgPerson)")

(* --- Composite cookies -------------------------------------------------- *)

let test_composite_cookie () =
  let comps = [ (2, "rs:5:00000007.000"); (0, "rs:1:00000003.000") ] in
  let c = Protocol.composite_cookie comps in
  check_bool "composite prefix" true (Protocol.is_composite_cookie c);
  (match Protocol.parse_composite_cookie c with
  | Some parsed ->
      Alcotest.(check (list (pair int string)))
        "sorted round trip"
        [ (0, "rs:1:00000003.000"); (2, "rs:5:00000007.000") ]
        parsed
  | None -> failwith "round trip failed");
  Alcotest.(check (option string))
    "component lookup" (Some "rs:5:00000007.000")
    (Protocol.composite_component c ~shard:2);
  Alcotest.(check (option string))
    "absent component" None
    (Protocol.composite_component c ~shard:1);
  check_bool "empty composite" true
    (Protocol.parse_composite_cookie (Protocol.composite_cookie []) = Some []);
  check_bool "plain cookie is not composite" true
    (Protocol.parse_composite_cookie "rs:1:00000003.000" = None);
  check_bool "missing separator" true
    (Protocol.parse_composite_cookie "rsm:1rs:1:x" = None);
  check_bool "empty component" true
    (Protocol.parse_composite_cookie "rsm:1@" = None)

(* --- Partition keys ----------------------------------------------------- *)

let test_partition_keys () =
  let p = make_partition ~countries:4 ~shards:2 () in
  check_int "block 0 home" 0 (Partition.of_serial p (serial 0 5));
  check_int "block 1 home" 1 (Partition.of_serial p (serial 1 5));
  check_int "block 2 wraps" 0 (Partition.of_serial p (serial 2 5));
  check_int "block 3 wraps" 1 (Partition.of_serial p (serial 3 5));
  check_int "unknown block at shard 0" 0 (Partition.of_serial p "99000");
  check_int "short value at shard 0" 0 (Partition.of_serial p "7");
  check_int "keyed entry" 1 (Partition.of_entry p (employee ~country:1 ~n:0 ()));
  check_bool "ou is structural" true (Partition.is_structural p (country_entry 0));
  check_bool "employee is keyed" false
    (Partition.is_structural p (employee ~country:0 ~n:0 ()));
  Alcotest.(check (list string)) "shard 0 blocks" [ "00"; "02" ]
    (Partition.blocks_of p 0);
  Alcotest.(check (list string)) "shard 1 blocks" [ "01"; "03" ]
    (Partition.blocks_of p 1)

(* --- Covers ------------------------------------------------------------- *)

let test_cover_single_block () =
  List.iter
    (fun shards ->
      let p = make_partition ~countries:4 ~shards () in
      for b = 0 to 3 do
        let q = serial_query b in
        Alcotest.(check (list int))
          (Printf.sprintf "block %d at %d shards" b shards)
          [ b mod shards ] (Partition.cover p q);
        Alcotest.(check (list int))
          "cached agrees with oracle" (Partition.cover_uncached p q)
          (Partition.cover p q)
      done)
    [ 1; 2; 4 ]

let test_cover_broadcast_and_conjunction () =
  let p = make_partition ~countries:4 ~shards:4 () in
  let dept = Query.make ~base:root (f "(departmentNumber=100)") in
  Alcotest.(check (list int)) "no key: broadcast" [ 0; 1; 2; 3 ]
    (Partition.cover p dept);
  let conj =
    Query.make ~base:root (f "(&(serialNumber=02*)(departmentNumber=100))")
  in
  Alcotest.(check (list int)) "conjunction keeps the key" [ 2 ]
    (Partition.cover p conj);
  let neg = Query.make ~base:root (f "(!(serialNumber=02*))") in
  Alcotest.(check (list int)) "negated key still needs the rest" [ 0; 1; 3 ]
    (Partition.cover p neg);
  let union =
    Query.make ~base:root (f "(|(serialNumber=01*)(serialNumber=02*))")
  in
  Alcotest.(check (list int)) "union covers both owners" [ 1; 2 ]
    (Partition.cover p union)

let test_cover_geography () =
  let p = make_partition ~countries:4 ~shards:4 () in
  let q = Query.make ~base:(country_dn 2) (f "(objectclass=inetOrgPerson)") in
  (* Anchored under country 2's subtree: only its block's owner (plus
     shard 0, which holds structural and stray entries) can answer. *)
  Alcotest.(check (list int)) "geography prunes" [ 0; 2 ] (Partition.cover p q);
  Alcotest.(check (list int)) "pruning can be disabled" [ 0; 1; 2; 3 ]
    (Partition.cover ~use_geo:false p q);
  Alcotest.(check (list int)) "uncached agrees" [ 0; 2 ]
    (Partition.cover_uncached p q)

let test_plan_cache () =
  let p = make_partition ~countries:4 ~shards:4 () in
  check_int "no lookups yet" 0 (Partition.plan_hits p + Partition.plan_misses p);
  Alcotest.(check (list int)) "first shape" [ 1 ] (Partition.cover p (serial_query 1));
  check_int "one miss" 1 (Partition.plan_misses p);
  (* Same shape, different constant: the cached plan must still route
     by the query's own values. *)
  Alcotest.(check (list int)) "cached, other block" [ 3 ]
    (Partition.cover p (serial_query 3));
  check_int "one hit" 1 (Partition.plan_hits p);
  check_int "still one miss" 1 (Partition.plan_misses p)

(* --- Routed writes ------------------------------------------------------ *)

let test_search_matches_oracle () =
  let router, _, source = make_router ~shards:2 () in
  List.iter
    (fun q -> check_bool "search = oracle" true (search_matches_oracle router source q))
    [
      serial_query 0;
      serial_query 3;
      broadcast_query;
      Query.make ~base:root (f "(departmentNumber=200)");
      Query.make ~base:(country_dn 1) (f "(objectclass=inetOrgPerson)");
      Query.make ~base:root (f "(&(serialNumber=01*)(departmentNumber=100))");
      Query.make ~base:root (f "(cn=p2-1)");
    ]

let test_write_routing () =
  let router, _, source = make_router ~shards:2 () in
  let csn0 = Shard_master.csn (Router.shard router 0) in
  let csn1 = Shard_master.csn (Router.shard router 1) in
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 1 0)
             [ Update.replace_values "telephonenumber" [ "555-0001" ] ])));
  check_bool "owner advanced" true
    (Csn.compare (Shard_master.csn (Router.shard router 1)) csn1 > 0);
  check_bool "other shard untouched" true
    (Csn.equal (Shard_master.csn (Router.shard router 0)) csn0);
  check_bool "search sees the write" true
    (search_matches_oracle router source (serial_query 1))

let test_ownership_move () =
  let router, _, source = make_router ~shards:2 () in
  (* Re-key p1-0 from block 1 (shard 1) into block 2 (shard 0). *)
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 1 0)
             [ Update.replace_values "serialnumber" [ serial 2 900 ] ])));
  let b0 = Shard_master.backend (Router.shard router 0) in
  let b1 = Shard_master.backend (Router.shard router 1) in
  check_bool "new owner holds it" true (Backend.find b0 (emp_dn 1 0) <> None);
  check_bool "old owner dropped it" true (Backend.find b1 (emp_dn 1 0) = None);
  check_bool "searchable at new home" true
    (search_matches_oracle router source (serial_query 2));
  check_bool "gone from old block" true
    (search_matches_oracle router source (serial_query 1));
  (* The ownership table re-routed: a follow-up modify lands at shard 0. *)
  let csn1 = Shard_master.csn (Router.shard router 1) in
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 1 0)
             [ Update.replace_values "telephonenumber" [ "555-0002" ] ])));
  check_bool "follow-up at new owner" true
    (Csn.equal (Shard_master.csn (Router.shard router 1)) csn1);
  check_int "one move recorded" 1 (Router.report router).Router.rp_moves

let test_structural_write () =
  let router, _, source = make_router ~shards:2 () in
  let extra =
    Entry.make (dn "ou=extra,o=shard")
      [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ "extra" ]) ]
  in
  ignore (must (route_apply router source (Update.add extra)));
  Array.iter
    (fun i ->
      check_bool
        (Printf.sprintf "shard %d holds the scaffold" i)
        true
        (Backend.find
           (Shard_master.backend (Router.shard router i))
           (dn "ou=extra,o=shard")
        <> None))
    [| 0; 1 |];
  (* Served exactly once despite living everywhere. *)
  check_bool "one copy served" true
    (search_matches_oracle router source (Query.make ~base:root (f "(ou=extra)")));
  ignore (must (route_apply router source (Update.delete (dn "ou=extra,o=shard"))));
  check_bool "delete replicated" true
    (Backend.find (Shard_master.backend (Router.shard router 1)) (dn "ou=extra,o=shard")
    = None)

let test_geo_pruning_disabled_by_violation () =
  let router, _, source = make_router ~shards:2 () in
  let q = Query.make ~base:(country_dn 1) (f "(objectclass=inetOrgPerson)") in
  check_bool "pruning on" true (Router.geo_pruning router);
  Alcotest.(check (list int)) "pruned cover" [ 0; 1 ] (Router.cover router q);
  (* An employee filed under country 0 but keyed into country 3's block
     breaks the geography assumption; the router must stop pruning. *)
  let stray =
    Entry.make (dn "cn=stray,ou=c0,o=shard")
      [
        ("objectclass", [ "inetOrgPerson" ]);
        ("cn", [ "stray" ]);
        ("sn", [ "stray" ]);
        ("serialNumber", [ serial 3 0 ]);
      ]
  in
  ignore (must (route_apply router source (Update.add stray)));
  check_bool "pruning off" false (Router.geo_pruning router);
  Alcotest.(check (list int)) "cover widened" [ 0; 1 ] (Router.cover router q);
  check_bool "stray still found" true
    (search_matches_oracle router source (serial_query 3))

(* --- ReSync through the router ------------------------------------------ *)

let sessions router i = Master.session_count (Shard_master.master (Router.shard router i))

let test_resync_single_shard_session () =
  let router, transport, source = make_router ~shards:2 () in
  let consumer = Consumer.create schema (serial_query 1) in
  let reply = sync_router consumer transport router in
  check_bool "initial" true (reply.Protocol.kind = Protocol.Initial_content);
  check_bool "content" true (consumer_matches_oracle consumer source);
  check_int "session only at the owner" 1 (sessions router 1);
  check_int "no session at shard 0" 0 (sessions router 0);
  let cookie = Option.get (Consumer.cookie consumer) in
  check_bool "composite cookie" true (Protocol.is_composite_cookie cookie);
  check_bool "only the owner's component" true
    (Protocol.parse_composite_cookie cookie
    |> Option.get |> List.map fst = [ 1 ]);
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 1 2)
             [ Update.replace_values "telephonenumber" [ "555-1000" ] ])));
  let reply = sync_router consumer transport router in
  check_bool "incremental resume" true (reply.Protocol.kind = Protocol.Incremental);
  check_bool "converged" true (consumer_matches_oracle consumer source)

let test_resync_broadcast_and_sync_end () =
  let router, transport, source = make_router ~shards:2 () in
  let consumer = Consumer.create schema broadcast_query in
  ignore (sync_router consumer transport router);
  check_int "sessions everywhere" 2 (sessions router 0 + sessions router 1);
  List.iter
    (fun (c, n) ->
      ignore
        (must
           (route_apply router source
              (Update.modify (emp_dn c n)
                 [ Update.replace_values "telephonenumber" [ "555-2000" ] ]))))
    [ (0, 0); (1, 1) ];
  let reply = sync_router consumer transport router in
  check_bool "merged incremental" true (reply.Protocol.kind = Protocol.Incremental);
  check_int "both shards' updates" 2 (List.length reply.Protocol.actions);
  check_bool "converged" true (consumer_matches_oracle consumer source);
  let cookie = Option.get (Consumer.cookie consumer) in
  (match
     Transport.exchange transport ~host:(Router.host router) ~from:"consumer"
       { Protocol.mode = Protocol.Sync_end; cookie = Some cookie }
       broadcast_query
   with
  | Ok _ -> ()
  | Error e -> failwith (Transport.error_to_string e));
  check_int "sessions ended" 0 (sessions router 0 + sessions router 1)

let test_mixed_kind_escalation () =
  let router, transport, source = make_router ~shards:2 () in
  let consumer = Consumer.create schema broadcast_query in
  ignore (sync_router consumer transport router);
  List.iter
    (fun (c, n) ->
      ignore
        (must
           (route_apply router source
              (Update.modify (emp_dn c n)
                 [ Update.replace_values "telephonenumber" [ "555-3000" ] ]))))
    [ (0, 1); (1, 2) ];
  (* Shard 1 forgets the session: its leg answers degraded while shard
     0 would answer incrementally.  The router must not merge the two
     as-is — the degraded leg prunes the consumer globally, which
     would discard shard 0's incremental update. *)
  let cookie = Option.get (Consumer.cookie consumer) in
  Master.abandon
    (Shard_master.master (Router.shard router 1))
    ~cookie:(Option.get (Protocol.composite_component cookie ~shard:1));
  let reply = sync_router consumer transport router in
  check_bool "merged degraded" true (reply.Protocol.kind = Protocol.Degraded);
  check_bool "converged through escalation" true
    (consumer_matches_oracle consumer source);
  check_bool "escalation recorded" true
    ((Router.report router).Router.rp_escalations >= 1);
  (* The escalated session is live again: the next round is incremental. *)
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 0 1)
             [ Update.replace_values "telephonenumber" [ "555-3001" ] ])));
  let reply = sync_router consumer transport router in
  check_bool "incremental after escalation" true
    (reply.Protocol.kind = Protocol.Incremental);
  check_bool "still converged" true (consumer_matches_oracle consumer source)

(* The satellite regression: a consumer resuming after a partial
   fan-out failure must not acknowledge a shard CSN it never applied.
   Shard 1's reply is lost inside the fan-out (the shard processed the
   poll, so its session advanced); the merged incremental reply must
   carry shard 1's previous component, and the retry must deliver the
   missed update. *)
let test_partial_fanout_keeps_old_component () =
  let router, transport, source = make_router ~shards:2 () in
  let faults = Option.get (Transport.faults transport) in
  let consumer = Consumer.create schema broadcast_query in
  ignore (sync_router consumer transport router);
  let before = Option.get (Consumer.cookie consumer) in
  let old_comp = Option.get (Protocol.composite_component before ~shard:1) in
  List.iter
    (fun (c, n) ->
      ignore
        (must
           (route_apply router source
              (Update.modify (emp_dn c n)
                 [ Update.replace_values "telephonenumber" [ "555-4000" ] ]))))
    [ (0, 0); (1, 0) ];
  (* consumer→router delivered, router→shard-0 delivered, and the
     router→shard-1 reply dropped mid-fan-out. *)
  Network.Faults.script faults
    [ Network.Faults.Deliver; Network.Faults.Deliver; Network.Faults.Drop_reply ];
  let reply = sync_router consumer transport router in
  check_bool "partial merge is incremental" true
    (reply.Protocol.kind = Protocol.Incremental);
  check_int "partial merge recorded" 1 (Router.report router).Router.rp_partials;
  let after = Option.get (Consumer.cookie consumer) in
  Alcotest.(check (option string))
    "failed shard keeps its old component" (Some old_comp)
    (Protocol.composite_component after ~shard:1);
  check_bool "shard 0's component advanced" true
    (Protocol.composite_component after ~shard:0
    <> Protocol.composite_component before ~shard:0);
  (* Shard 0's update applied; shard 1's is still outstanding. *)
  let phones dn_ =
    List.find_map
      (fun e -> if Dn.equal (Entry.dn e) dn_ then Some (Entry.get e "telephonenumber") else None)
      (Consumer.entries consumer)
  in
  check_bool "delivered leg applied" true (phones (emp_dn 0 0) = Some [ "555-4000" ]);
  check_bool "lost leg not applied" true (phones (emp_dn 1 0) <> Some [ "555-4000" ]);
  (* Healed retry: shard 1's session advanced past the old component's
     CSN, so it answers degraded from exactly what the consumer
     acknowledged — nothing is lost. *)
  ignore (sync_router consumer transport router);
  check_bool "retry converges" true (consumer_matches_oracle consumer source)

let test_pruning_reply_with_failed_shard_errors () =
  let router, transport, source = make_router ~shards:2 () in
  let faults = Option.get (Transport.faults transport) in
  let consumer = Consumer.create schema broadcast_query in
  (* First contact: both legs would answer Initial_content.  Losing a
     shard here must fail the whole poll — merging an initial reply
     without one shard's entries would present a hole as truth. *)
  Network.Faults.script faults
    [ Network.Faults.Deliver; Network.Faults.Deliver; Network.Faults.Drop_reply ];
  (match Consumer.sync_over ~max_attempts:1 consumer transport ~host:(Router.host router) with
  | Ok _ -> failwith "partial initial content must not merge"
  | Error _ -> ());
  check_bool "no cookie stored" true (Consumer.cookie consumer = None);
  (* The unscripted retry succeeds and converges. *)
  ignore (sync_router consumer transport router);
  check_bool "retry converges" true (consumer_matches_oracle consumer source)

let test_consumer_leg_drop_recovers () =
  let router, transport, source = make_router ~shards:2 () in
  let faults = Option.get (Transport.faults transport) in
  let consumer = Consumer.create schema broadcast_query in
  ignore (sync_router consumer transport router);
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 0 2)
             [ Update.replace_values "telephonenumber" [ "555-5000" ] ])));
  (* The merged reply is lost on the way back to the consumer after
     every shard advanced.  The consumer retries with its old
     composite; both shards answer the stale components degraded. *)
  Network.Faults.script faults [ Network.Faults.Drop_reply ];
  (match Consumer.sync_over consumer transport ~host:(Router.host router) with
  | Ok outcome -> check_bool "recovered by resync" true outcome.Consumer.resynced
  | Error e -> failwith (Consumer.sync_error_to_string e));
  check_bool "converged" true (consumer_matches_oracle consumer source)

let test_persist_through_router () =
  let router, transport, source = make_router ~shards:2 () in
  let consumer = Consumer.create schema broadcast_query in
  (match Consumer.connect_persist consumer transport ~host:(Router.host router) with
  | Ok _ -> ()
  | Error e -> failwith (Consumer.sync_error_to_string e));
  check_int "persistent sessions everywhere" 2 (sessions router 0 + sessions router 1);
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 1 1)
             [ Update.replace_values "telephonenumber" [ "555-6000" ] ])));
  check_bool "push relayed through router" true
    (consumer_matches_oracle consumer source);
  check_bool "connection alive" true (Consumer.persist_alive consumer)

let test_merkle_through_router () =
  let router, transport, source = make_router ~shards:2 () in
  let consumer = Consumer.create schema broadcast_query in
  ignore (sync_router consumer transport router);
  (* Drift accumulates while the consumer is offline; it reconciles by
     Merkle walk instead of polling, then resumes incrementally from
     the composite cookie the walk minted. *)
  List.iter
    (fun (c, n) ->
      ignore
        (must
           (route_apply router source
              (Update.modify (emp_dn c n)
                 [ Update.replace_values "telephonenumber" [ "555-7000" ] ]))))
    [ (0, 0); (0, 2); (1, 1) ];
  (match Consumer.merkle_sync consumer transport ~host:(Router.host router) with
  | Ok _ -> ()
  | Error e -> failwith e);
  check_bool "reconciled" true (consumer_matches_oracle consumer source);
  ignore
    (must
       (route_apply router source
          (Update.modify (emp_dn 1 2)
             [ Update.replace_values "telephonenumber" [ "555-7001" ] ])));
  let reply = sync_router consumer transport router in
  check_bool "minted cookie resumes incrementally" true
    (reply.Protocol.kind = Protocol.Incremental);
  check_bool "converged" true (consumer_matches_oracle consumer source)

let test_shard_crash_recovery () =
  let router, transport, source = make_router ~shards:2 () in
  let medium = Medium.memory () in
  for i = 0 to 1 do
    Shard_master.attach_stores (Router.shard router i) medium
      ~prefix:(Printf.sprintf "shard-%d" i)
  done;
  let consumer = Consumer.create schema (serial_query 1) in
  ignore (sync_router consumer transport router);
  let update n v =
    ignore
      (must
         (route_apply router source
            (Update.modify (emp_dn 1 n)
               [ Update.replace_values "telephonenumber" [ v ] ])))
  in
  update 0 "555-8000";
  ignore (sync_router consumer transport router);
  Shard_master.checkpoint (Router.shard router 1);
  update 1 "555-8001";
  update 2 "555-8002";
  (* Crash shard 1 and rebuild it from its stores; the consumer's
     composite cookie must resume against the recovered master. *)
  let recovered, recovery =
    must (Shard_master.recover schema ~id:1 medium ~prefix:"shard-1")
  in
  check_bool "post-checkpoint WAL replayed" true
    (List.length recovery.Shard_master.rc_backend.Ldap_store.Store.records >= 2);
  Router.replace_shard router 1 recovered;
  ignore (sync_router consumer transport router);
  check_bool "resumed consumer converged" true
    (consumer_matches_oracle consumer source);
  check_bool "router search intact" true
    (search_matches_oracle router source (serial_query 1));
  check_bool "other shard untouched" true
    (search_matches_oracle router source (serial_query 0))

(* --- Properties --------------------------------------------------------- *)

let filter_gen =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          map (fun b -> Printf.sprintf "(serialNumber=%02d*)" b) (int_bound 4);
          map (fun d -> Printf.sprintf "(departmentNumber=%d00)" (1 + d)) (int_bound 1);
          return "(objectclass=inetOrgPerson)";
          return "(serialNumber=*)";
          map (fun (c, n) -> Printf.sprintf "(cn=p%d-%d)" c n)
            (pair (int_bound 3) (int_bound 2));
        ]
    in
    let ( let* ) = ( >>= ) in
    fix
      (fun self depth ->
        if depth = 0 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 2,
                let* a = self (depth - 1) in
                let* b = self (depth - 1) in
                return (Printf.sprintf "(&%s%s)" a b) );
              ( 2,
                let* a = self (depth - 1) in
                let* b = self (depth - 1) in
                return (Printf.sprintf "(|%s%s)" a b) );
              ( 1,
                let* a = self (depth - 1) in
                return (Printf.sprintf "(!%s)" a) );
            ])
      2)

let cover_case_gen =
  QCheck.Gen.(
    triple (1 -- 4) filter_gen
      (oneof [ return None; map (fun c -> Some c) (int_bound 3) ]))

let prop_cover_sound_and_minimal =
  QCheck.Test.make ~name:"shard: covers are sound and provably minimal"
    ~count:200
    (QCheck.make ~print:(fun (s, f_, b) ->
         Printf.sprintf "shards=%d filter=%s base=%s" s f_
           (match b with None -> "root" | Some c -> Printf.sprintf "c%d" c))
       cover_case_gen)
    (fun (shards, filter_s, base_country) ->
      let source = build_source ~countries:4 ~per:3 in
      let p = make_partition ~countries:4 ~shards () in
      let base = match base_country with None -> root | Some c -> country_dn c in
      let q = Query.make ~base (f filter_s) in
      let cov = Partition.cover p q in
      (* The staged plan must agree with the uncached prover. *)
      if cov <> Partition.cover_uncached p q then false
      else
        let matching = oracle_search source q in
        (* Sound: every matching entry's owner is contacted. *)
        List.for_all
          (fun e ->
            let owner = Partition.of_entry p e in
            List.mem owner cov
            || (Partition.is_structural p e && List.mem 0 cov))
          matching
        (* Minimal: no keyed shard in the cover is provably disjoint
           from the filter over its blocks. *)
        && List.for_all
             (fun s ->
               s = 0
               || not
                    (Containment.disjoint schema
                       (Filter.normalize q.Query.filter)
                       (Partition.ownership_filter p s)))
             cov)

(* Random routed histories: the router over any shard count must be
   observationally equivalent to a single master over the same
   backend, for searches and for a subscribed consumer, under every
   history strategy. *)
type sim_op =
  | Op_phone of int
  | Op_rekey of int * int
  | Op_add of int * int * int
  | Op_del of int
  | Op_rename of int * int
  | Op_poll

let sim_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun i -> Op_phone i) (int_bound 8));
        (2, map (fun (i, b) -> Op_rekey (i, b)) (pair (int_bound 8) (int_bound 4)));
        (2, map (fun (k, (c, b)) -> Op_add (k, c, b))
             (pair (int_bound 2) (pair (int_bound 2) (int_bound 4))));
        (1, map (fun i -> Op_del i) (int_bound 8));
        (1, map (fun (i, k) -> Op_rename (i, k)) (pair (int_bound 8) (int_bound 2)));
        (3, return Op_poll);
      ])

let sim_update = function
  | Op_phone i ->
      Update.modify (emp_dn (i / 3) (i mod 3))
        [ Update.replace_values "telephonenumber" [ Printf.sprintf "555-%04d" i ] ]
  | Op_rekey (i, b) ->
      Update.modify (emp_dn (i / 3) (i mod 3))
        [ Update.replace_values "serialnumber" [ serial b (100 + i) ] ]
  | Op_add (k, c, b) ->
      Update.add
        (Entry.make
           (dn (Printf.sprintf "cn=x%d,ou=c%d,o=shard" k c))
           [
             ("objectclass", [ "inetOrgPerson" ]);
             ("cn", [ Printf.sprintf "x%d" k ]);
             ("sn", [ Printf.sprintf "x%d" k ]);
             ("serialNumber", [ serial b (200 + k) ]);
           ])
  | Op_del i -> Update.delete (emp_dn (i / 3) (i mod 3))
  | Op_rename (i, k) ->
      Update.modify_dn (emp_dn (i / 3) (i mod 3))
        (match Dn.rdn_of_string (Printf.sprintf "cn=r%d" k) with
        | Ok r -> r
        | Error e -> failwith e)
  | Op_poll -> assert false

let equiv_case_gen =
  QCheck.Gen.(
    QCheck.Gen.map
      (fun (((shards, strat), qk), ops) -> (shards, strat, qk, ops))
      (pair
         (pair (pair (1 -- 4) (int_bound 2)) (int_bound 3))
         (list_size (0 -- 14) sim_op_gen)))

let equiv_query = function
  | 0 -> serial_query 1
  | 1 -> broadcast_query
  | 2 -> Query.make ~base:root (f "(departmentNumber=100)")
  | _ -> Query.make ~base:root (f "(&(serialNumber=00*)(objectclass=inetOrgPerson))")

let prop_router_equals_single_master =
  QCheck.Test.make
    ~name:"shard: router ≡ single master under every history strategy"
    ~count:120
    (QCheck.make ~print:(fun (s, st, qk, ops) ->
         let op_name = function
           | Op_phone i -> Printf.sprintf "phone %d" i
           | Op_rekey (i, b) -> Printf.sprintf "rekey %d->%d" i b
           | Op_add (k, c, b) -> Printf.sprintf "add %d@c%d:%d" k c b
           | Op_del i -> Printf.sprintf "del %d" i
           | Op_rename (i, k) -> Printf.sprintf "rename %d->r%d" i k
           | Op_poll -> "poll"
         in
         Printf.sprintf "shards=%d strategy=%d query=%d ops=[%s]" s st qk
           (String.concat "; " (List.map op_name ops)))
       equiv_case_gen)
    (fun (shards, strat, qk, ops) ->
      let strategy =
        match strat with
        | 0 -> Master.Session_history
        | 1 -> Master.Changelog
        | _ -> Master.Tombstone
      in
      let router, transport, source = make_router ~countries:3 ~strategy ~shards () in
      let oracle_master = Master.create ~strategy source in
      let q = equiv_query qk in
      let rc = Consumer.create schema q in
      let oc = Consumer.create schema q in
      let sync_both () =
        (match Consumer.sync_over rc transport ~host:(Router.host router) with
        | Ok _ -> ()
        | Error e -> failwith (Consumer.sync_error_to_string e));
        (match Consumer.sync oc oracle_master with
        | Ok _ -> ()
        | Error e -> failwith e);
        entries_equal (Consumer.entries rc) (Consumer.entries oc)
      in
      sync_both ()
      && List.for_all
           (fun op ->
             match op with
             | Op_poll -> sync_both ()
             | _ ->
                 let u = sim_update op in
                 (match (Router.apply router u, Backend.apply source u) with
                 | Ok _, Ok _ | Error _, Error _ -> true
                 | _ -> false)
                 && search_matches_oracle router source q)
           ops
      && sync_both ()
      && search_matches_oracle router source broadcast_query)

let suite =
  [
    Alcotest.test_case "composite cookie" `Quick test_composite_cookie;
    Alcotest.test_case "partition keys" `Quick test_partition_keys;
    Alcotest.test_case "single-block cover" `Quick test_cover_single_block;
    Alcotest.test_case "broadcast+conjunction cover" `Quick
      test_cover_broadcast_and_conjunction;
    Alcotest.test_case "geography cover" `Quick test_cover_geography;
    Alcotest.test_case "plan cache" `Quick test_plan_cache;
    Alcotest.test_case "search matches oracle" `Quick test_search_matches_oracle;
    Alcotest.test_case "write routing" `Quick test_write_routing;
    Alcotest.test_case "ownership move" `Quick test_ownership_move;
    Alcotest.test_case "structural write" `Quick test_structural_write;
    Alcotest.test_case "geo pruning disabled" `Quick
      test_geo_pruning_disabled_by_violation;
    Alcotest.test_case "resync single shard" `Quick test_resync_single_shard_session;
    Alcotest.test_case "resync broadcast+sync_end" `Quick
      test_resync_broadcast_and_sync_end;
    Alcotest.test_case "mixed-kind escalation" `Quick test_mixed_kind_escalation;
    Alcotest.test_case "partial fan-out keeps old component" `Quick
      test_partial_fanout_keeps_old_component;
    Alcotest.test_case "partial initial refuses" `Quick
      test_pruning_reply_with_failed_shard_errors;
    Alcotest.test_case "consumer leg drop" `Quick test_consumer_leg_drop_recovers;
    Alcotest.test_case "persist through router" `Quick test_persist_through_router;
    Alcotest.test_case "merkle through router" `Quick test_merkle_through_router;
    Alcotest.test_case "shard crash recovery" `Quick test_shard_crash_recovery;
    QCheck_alcotest.to_alcotest prop_cover_sound_and_minimal;
    QCheck_alcotest.to_alcotest prop_router_equals_single_master;
  ]
