(* Tests for the synthetic substrate: PRNG, Zipf, enterprise directory
   and workload generation, and the update stream. *)
open Ldap
module D = Ldap_dirgen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- PRNG -------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = D.Prng.create 1 and b = D.Prng.create 1 in
  for _ = 1 to 100 do
    check_bool "same stream" true (D.Prng.next a = D.Prng.next b)
  done;
  let c = D.Prng.create 2 in
  check_bool "different seed differs" true (D.Prng.next a <> D.Prng.next c)

let test_prng_bounds () =
  let p = D.Prng.create 3 in
  for _ = 1 to 1000 do
    let v = D.Prng.int p 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = D.Prng.int_in p 5 9 in
    check_bool "inclusive range" true (v >= 5 && v <= 9)
  done;
  for _ = 1 to 100 do
    let v = D.Prng.float p 2.5 in
    check_bool "float range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_weighted () =
  let p = D.Prng.create 4 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let k = D.Prng.weighted p [ ("a", 0.9); ("b", 0.1) ] in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  check_bool "rough proportion" true (a > 8_500 && a < 9_500)

let test_prng_shuffle_permutes () =
  let p = D.Prng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  D.Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check_bool "permutation" true (sorted = Array.init 50 (fun i -> i));
  check_bool "actually shuffled" true (arr <> Array.init 50 (fun i -> i))

(* --- Zipf -------------------------------------------------------------- *)

let test_zipf_skew () =
  let z = D.Zipf.create ~s:1.0 100 in
  let p = D.Prng.create 6 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let r = D.Zipf.sample z p in
    counts.(r) <- counts.(r) + 1
  done;
  check_bool "rank 0 most popular" true (counts.(0) > counts.(10));
  check_bool "rank 10 beats rank 90" true (counts.(10) > counts.(90));
  (* Probabilities sum to one. *)
  let total = ref 0.0 in
  for i = 0 to 99 do
    total := !total +. D.Zipf.probability z i
  done;
  check_bool "mass sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

(* --- Enterprise --------------------------------------------------------- *)

let small_config =
  { D.Enterprise.default_config with D.Enterprise.employees = 1_000 }

let enterprise = lazy (D.Enterprise.build small_config)

let test_enterprise_shape () =
  let e = Lazy.force enterprise in
  let b = D.Enterprise.backend e in
  check_bool "person count near configured" true
    (abs (D.Enterprise.person_count e - 1_000) < 20);
  (* Every employee is a direct child of its country (flat namespace). *)
  Array.iter
    (fun (emp : D.Enterprise.employee) ->
      check_bool "flat" true
        (Dn.parent_of
           (D.Enterprise.country_dn e emp.D.Enterprise.emp_country)
           emp.D.Enterprise.emp_dn))
    (D.Enterprise.employees e);
  (* Target geography holds roughly 30% of employees. *)
  let target =
    List.fold_left
      (fun acc ci -> acc + Array.length (D.Enterprise.employees_of_country e ci))
      0
      (D.Enterprise.target_countries e)
  in
  let share = float_of_int target /. float_of_int (D.Enterprise.person_count e) in
  check_bool "target share" true (share > 0.25 && share < 0.35);
  (* Departments are resolvable entries under divisions. *)
  let sample_dept = (D.Enterprise.dept_numbers e).(0) in
  let division = int_of_string (String.sub sample_dept 0 2) in
  let dept_dn =
    Dn.child_ava (D.Enterprise.division_dn e division) "ou" ("dept-" ^ sample_dept)
  in
  check_bool "dept entry exists" true (Backend.find b dept_dn <> None)

let test_enterprise_serials_organized () =
  let e = Lazy.force enterprise in
  Array.iter
    (fun (emp : D.Enterprise.employee) ->
      check_int "fixed width" D.Enterprise.serial_prefix_length
        (String.length emp.D.Enterprise.emp_serial);
      let country_prefix = Printf.sprintf "%02d" emp.D.Enterprise.emp_country in
      check_bool "country block prefix" true
        (String.sub emp.D.Enterprise.emp_serial 0 2 = country_prefix))
    (D.Enterprise.employees e)

let test_enterprise_searchable () =
  let e = Lazy.force enterprise in
  let b = D.Enterprise.backend e in
  let emp = (D.Enterprise.employees e).(42) in
  let q =
    Query.make ~base:(D.Enterprise.root_dn e)
      (Filter.of_string_exn
         (Printf.sprintf "(serialNumber=%s)" emp.D.Enterprise.emp_serial))
  in
  match Backend.search b q with
  | Ok { Backend.entries = [ found ]; _ } ->
      check_bool "right entry" true (Dn.equal (Entry.dn found) emp.D.Enterprise.emp_dn)
  | _ -> Alcotest.fail "serial lookup failed"

let test_enterprise_deterministic () =
  let a = D.Enterprise.build small_config in
  let b = D.Enterprise.build small_config in
  check_int "same size" (D.Enterprise.person_count a) (D.Enterprise.person_count b);
  let ea = (D.Enterprise.employees a).(7) and eb = (D.Enterprise.employees b).(7) in
  check_bool "same employee" true (Dn.equal ea.D.Enterprise.emp_dn eb.D.Enterprise.emp_dn);
  check_bool "same mail" true (ea.D.Enterprise.emp_mail = eb.D.Enterprise.emp_mail)

(* --- Workload ------------------------------------------------------------ *)

let test_workload_mix () =
  let e = Lazy.force enterprise in
  let items =
    D.Workload.generate e { D.Workload.default_config with D.Workload.length = 10_000 }
  in
  check_int "length" 10_000 (Array.length items);
  List.iter
    (fun (kind, share) ->
      let expected =
        match kind with
        | D.Workload.Serial -> 0.58
        | D.Workload.Mail -> 0.24
        | D.Workload.Dept -> 0.16
        | D.Workload.Location -> 0.02
      in
      check_bool
        (Printf.sprintf "%s near %.2f" (D.Workload.kind_name kind) expected)
        true
        (abs_float (share -. expected) < 0.05))
    (D.Workload.mix_of items)

let test_workload_queries_answerable () =
  let e = Lazy.force enterprise in
  let b = D.Enterprise.backend e in
  let items =
    D.Workload.generate e { D.Workload.default_config with D.Workload.length = 300 }
  in
  (* Root-based queries exist and find at least one entry; scoped
     variants find the same entries. *)
  Array.iter
    (fun (item : D.Workload.item) ->
      let count q = Backend.count_matching b q in
      let root_count = count item.D.Workload.query in
      check_bool "answerable" true (root_count >= 1);
      check_int "scoped equals root" root_count (count item.D.Workload.scoped))
    items

let test_workload_repeats () =
  let e = Lazy.force enterprise in
  let items =
    D.Workload.generate e { D.Workload.default_config with D.Workload.length = 5_000 }
  in
  (* Temporal locality: a noticeable share of exact repeats. *)
  let seen = Hashtbl.create 1024 in
  let repeats = ref 0 in
  Array.iter
    (fun (item : D.Workload.item) ->
      let key = Query.to_string item.D.Workload.query in
      if Hashtbl.mem seen key then incr repeats else Hashtbl.add seen key ())
    items;
  let share = float_of_int !repeats /. 5_000.0 in
  check_bool "repeat share" true (share > 0.10 && share < 0.85)

(* --- Trace ----------------------------------------------------------------- *)

let test_trace_round_trip () =
  let e = Lazy.force enterprise in
  let items =
    D.Workload.generate e { D.Workload.default_config with D.Workload.length = 200 }
  in
  match D.Trace.of_string (D.Trace.to_string items) with
  | Error msg -> Alcotest.fail msg
  | Ok parsed ->
      check_int "same length" (Array.length items) (Array.length parsed);
      Array.iteri
        (fun i (item : D.Workload.item) ->
          let p = parsed.(i) in
          check_bool "kind" true (p.D.Workload.kind = item.D.Workload.kind);
          check_bool "query" true (Query.equal p.D.Workload.query item.D.Workload.query);
          check_bool "scoped" true (Query.equal p.D.Workload.scoped item.D.Workload.scoped))
        items

let test_trace_errors_and_comments () =
  (match D.Trace.of_string "# comment\n\n" with
  | Ok [||] -> ()
  | _ -> Alcotest.fail "comments/blank should parse to empty");
  check_bool "missing fields" true
    (Result.is_error (D.Trace.of_string "serialNumber\tsub\to=xyz\n"));
  check_bool "bad kind" true
    (Result.is_error (D.Trace.of_string "bogus\tsub\to=xyz\t(a=1)\to=xyz\n"));
  check_bool "bad filter" true
    (Result.is_error (D.Trace.of_string "mail\tsub\to=xyz\t(((\to=xyz\n"));
  check_bool "kind aliases" true (D.Trace.kind_of_name "dept" = Some D.Workload.Dept)

(* --- Update stream -------------------------------------------------------- *)

let test_update_stream_valid_ops () =
  let e = D.Enterprise.build small_config in
  let stream = D.Update_stream.create e D.Update_stream.default_config in
  let before = Backend.csn (D.Enterprise.backend e) in
  D.Update_stream.steps stream 500;
  check_int "all ops applied" 500 (D.Update_stream.applied stream);
  let records = Backend.log_since (D.Enterprise.backend e) before in
  check_int "all committed" 500 (List.length records);
  check_bool "population tracked" true (D.Update_stream.live_employees stream > 0)

let test_update_stream_mix () =
  let e = D.Enterprise.build small_config in
  let stream = D.Update_stream.create e D.Update_stream.default_config in
  let before = Backend.csn (D.Enterprise.backend e) in
  D.Update_stream.steps stream 1_000;
  let records = Backend.log_since (D.Enterprise.backend e) before in
  let count kind =
    List.length
      (List.filter (fun (r : Update.record) -> Update.op_kind_name r.Update.op = kind) records)
  in
  check_bool "modifies dominate" true (count "modify" > 500);
  check_bool "adds present" true (count "add" > 50);
  check_bool "deletes present" true (count "delete" > 50);
  check_bool "renames present" true (count "modifyDN" > 10)

(* --- Streaming generator = build ------------------------------------- *)

(* The streaming seeder ([generate]/[populate]) and the materializing
   [build] must describe byte-identical directories: same entry count
   (predicted without generating), same entries under the same DNs. *)
let test_generate_matches_build () =
  let cfg =
    { D.Enterprise.default_config with D.Enterprise.employees = 500; countries = 6 }
  in
  let streamed = ref 0 in
  D.Enterprise.generate cfg ~f:(fun _ -> incr streamed);
  check_int "entry_count predicts the stream" (D.Enterprise.entry_count cfg)
    !streamed;
  let built = D.Enterprise.backend (D.Enterprise.build cfg) in
  let populated = Backend.create ~indexed:D.Enterprise.indexed_attrs Schema.default in
  D.Enterprise.populate cfg populated;
  check_int "same entry totals" (Backend.total_entries built)
    (Backend.total_entries populated);
  check_int "stream totals match" !streamed (Backend.total_entries built);
  let dump b =
    List.sort compare
      (List.of_seq
         (Seq.map
            (fun e -> (Dn.canonical (Entry.dn e), Entry.content_hash64 e))
            (Backend.entries_seq b)))
  in
  check_bool "populate content = build content" true (dump built = dump populated);
  (* Both paths leave the update log trimmed: experiments see only
     their own updates. *)
  check_int "populated log trimmed" 0
    (List.length (Backend.log_since populated Csn.zero))

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng weighted" `Quick test_prng_weighted;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "enterprise shape" `Quick test_enterprise_shape;
    Alcotest.test_case "serials organized" `Quick test_enterprise_serials_organized;
    Alcotest.test_case "enterprise searchable" `Quick test_enterprise_searchable;
    Alcotest.test_case "enterprise deterministic" `Quick test_enterprise_deterministic;
    Alcotest.test_case "generate = build = populate" `Quick test_generate_matches_build;
    Alcotest.test_case "workload mix" `Quick test_workload_mix;
    Alcotest.test_case "workload answerable" `Quick test_workload_queries_answerable;
    Alcotest.test_case "workload repeats" `Quick test_workload_repeats;
    Alcotest.test_case "trace round trip" `Quick test_trace_round_trip;
    Alcotest.test_case "trace errors" `Quick test_trace_errors_and_comments;
    Alcotest.test_case "update stream valid" `Quick test_update_stream_valid_ops;
    Alcotest.test_case "update stream mix" `Quick test_update_stream_mix;
  ]
