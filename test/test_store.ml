(* Tests for the durable store: CRC framing, WAL recovery and
   truncation, atomic snapshots, the generation guard tying them
   together, and the fault-injectable medium's crash semantics.  The
   QCheck properties pin the two recovery invariants down: every
   record written round-trips, and every byte-prefix of a valid log
   recovers without raising to a prefix of its records. *)
module Store = Ldap_store

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string_list = Alcotest.(check (list string))

(* --- CRC-32 ----------------------------------------------------------- *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value: crc32("123456789") = 0xCBF43926. *)
  check_int "check value" 0xCBF43926 (Store.Crc32.string "123456789");
  check_int "empty string" 0 (Store.Crc32.string "");
  check_int "sub matches whole" (Store.Crc32.string "456")
    (Store.Crc32.sub "123456789" ~pos:3 ~len:3);
  check_bool "single bit flips the sum" true
    (Store.Crc32.string "hello" <> Store.Crc32.string "hellp")

(* --- WAL framing ------------------------------------------------------ *)

let test_wal_round_trip () =
  let m = Store.Medium.memory () in
  let payloads = [ "alpha"; ""; "beta\x00binary\xff"; String.make 300 'x' ] in
  List.iter (Store.Wal.append m ~name:"log") payloads;
  let r = Store.Wal.recover m ~name:"log" in
  check_string_list "payloads back, oldest first" payloads r.Store.Wal.records;
  check_bool "clean log" false r.Store.Wal.truncated;
  check_int "valid_len is the file length" (Store.Medium.size m ~name:"log")
    r.Store.Wal.valid_len

let test_wal_torn_tail_truncates () =
  let m = Store.Medium.memory () in
  Store.Wal.append m ~name:"log" "first";
  Store.Wal.append m ~name:"log" "second";
  let good_len = Store.Medium.size m ~name:"log" in
  (* A torn third record: frame header promising more bytes than the
     file holds. *)
  Store.Medium.append m ~name:"log" "\xd1\x00\x00\x00\x20gar";
  Store.Medium.sync m ~name:"log";
  let r = Store.Wal.recover m ~name:"log" in
  check_string_list "whole records survive" [ "first"; "second" ]
    r.Store.Wal.records;
  check_bool "tail reported torn" true r.Store.Wal.truncated;
  check_int "truncated back to the last whole record" good_len
    r.Store.Wal.valid_len;
  check_int "medium file physically cut" good_len
    (Store.Medium.size m ~name:"log");
  (* Appends continue from the clean boundary. *)
  Store.Wal.append m ~name:"log" "third";
  let r2 = Store.Wal.recover m ~name:"log" in
  check_string_list "log continues after truncation"
    [ "first"; "second"; "third" ]
    r2.Store.Wal.records;
  check_bool "second recovery is clean" false r2.Store.Wal.truncated

let test_wal_corrupt_byte_truncates () =
  let m = Store.Medium.memory () in
  Store.Wal.append m ~name:"log" "first";
  let good_len = Store.Medium.size m ~name:"log" in
  Store.Wal.append m ~name:"log" "second";
  (* Flip one payload byte of the second record: its CRC now fails, so
     replay must stop after the first. *)
  let bytes = Bytes.of_string (Option.get (Store.Medium.read m ~name:"log")) in
  Bytes.set bytes (Bytes.length bytes - 1) '!';
  Store.Medium.truncate m ~name:"log" 0;
  Store.Medium.append m ~name:"log" (Bytes.to_string bytes);
  Store.Medium.sync m ~name:"log";
  let r = Store.Wal.recover m ~name:"log" in
  check_string_list "replay stops before the corrupt record" [ "first" ]
    r.Store.Wal.records;
  check_bool "corruption reported" true r.Store.Wal.truncated;
  check_int "cut back to the last good record" good_len r.Store.Wal.valid_len

(* --- Snapshots -------------------------------------------------------- *)

let test_snapshot_round_trip () =
  let m = Store.Medium.memory () in
  Store.Snapshot.write m ~name:"snap" "state one";
  Alcotest.(check (option string))
    "payload back" (Some "state one")
    (Store.Snapshot.read m ~name:"snap");
  Store.Snapshot.write m ~name:"snap" "state two";
  Alcotest.(check (option string))
    "replaced atomically" (Some "state two")
    (Store.Snapshot.read m ~name:"snap");
  Alcotest.(check (option string))
    "missing file" None
    (Store.Snapshot.read m ~name:"absent")

let test_snapshot_corruption_detected () =
  let m = Store.Medium.memory () in
  Store.Snapshot.write m ~name:"snap" "precious";
  let bytes = Bytes.of_string (Option.get (Store.Medium.read m ~name:"snap")) in
  let i = Bytes.length bytes - 2 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 1));
  Store.Medium.truncate m ~name:"snap" 0;
  Store.Medium.append m ~name:"snap" (Bytes.to_string bytes);
  Alcotest.(check (option string))
    "checksum mismatch rejected" None
    (Store.Snapshot.read m ~name:"snap")

(* --- Medium crash semantics ------------------------------------------- *)

let test_crash_lose_unsynced () =
  let m = Store.Medium.memory () in
  Store.Medium.append m ~name:"f" "synced";
  Store.Medium.sync m ~name:"f";
  Store.Medium.append m ~name:"f" " and not";
  Store.Medium.crash m;
  Alcotest.(check (option string))
    "only the synced prefix survives" (Some "synced")
    (Store.Medium.read m ~name:"f")

let test_crash_scripted_outcomes () =
  let faults = Store.Medium.Faults.create () in
  let m = Store.Medium.memory ~faults () in
  Store.Medium.append m ~name:"f" "synced|";
  Store.Medium.sync m ~name:"f";
  Store.Medium.append m ~name:"f" "unsynced tail";
  Store.Medium.Faults.script faults [ Store.Medium.Faults.Keep_all ];
  Store.Medium.crash m;
  Alcotest.(check (option string))
    "Keep_all keeps everything" (Some "synced|unsynced tail")
    (Store.Medium.read m ~name:"f");
  (* Now the whole file is considered synced (it survived), so tear a
     fresh unsynced append. *)
  Store.Medium.append m ~name:"f" "!second tail";
  Store.Medium.Faults.script faults [ Store.Medium.Faults.Torn_tail ];
  Store.Medium.crash m;
  let survived = Option.get (Store.Medium.read m ~name:"f") in
  let base = "synced|unsynced tail" in
  check_bool "torn tail keeps a strict prefix of the unsynced append" true
    (String.length survived >= String.length base
    && String.length survived < String.length base + String.length "!second tail"
    && String.sub survived 0 (String.length base) = base)

let test_write_atomic_survives_crash () =
  let m = Store.Medium.memory () in
  Store.Medium.write_atomic m ~name:"f" "whole image";
  Store.Medium.crash m;
  Alcotest.(check (option string))
    "atomic write is durable without an explicit sync" (Some "whole image")
    (Store.Medium.read m ~name:"f")

(* --- Store: snapshot + WAL + generation guard ------------------------- *)

let test_store_checkpoint_and_replay () =
  let m = Store.Medium.memory () in
  let s = Store.Store.create m ~name:"acct" in
  Store.Store.append s "r1";
  Store.Store.append s "r2";
  Store.Store.checkpoint s "state@2";
  Store.Store.append s "r3";
  let r = Store.Store.recover s in
  Alcotest.(check (option string))
    "snapshot from the checkpoint" (Some "state@2") r.Store.Store.snapshot;
  check_string_list "only post-checkpoint records replay" [ "r3" ]
    r.Store.Store.records;
  check_bool "clean" false r.Store.Store.truncated;
  check_int "no stale records" 0 r.Store.Store.stale

let test_store_generation_guard () =
  let m = Store.Medium.memory () in
  let s = Store.Store.create m ~name:"acct" in
  Store.Store.append s "old1";
  Store.Store.append s "old2";
  let stale_wal = Option.get (Store.Medium.read m ~name:"acct.wal") in
  Store.Store.checkpoint s "new state";
  (* Simulate the crash window between snapshot install and WAL reset:
     the WAL still holds the previous generation's log. *)
  Store.Medium.truncate m ~name:"acct.wal" 0;
  Store.Medium.append m ~name:"acct.wal" stale_wal;
  Store.Medium.sync m ~name:"acct.wal";
  let r = Store.Store.recover (Store.Store.create m ~name:"acct") in
  Alcotest.(check (option string))
    "newer snapshot wins" (Some "new state") r.Store.Store.snapshot;
  check_string_list "stale-generation records not replayed" []
    r.Store.Store.records;
  check_int "both stale records counted" 2 r.Store.Store.stale

let test_store_destroy () =
  let m = Store.Medium.memory () in
  let s = Store.Store.create m ~name:"acct" in
  Store.Store.append s "r1";
  Store.Store.checkpoint s "state";
  check_bool "durable state present" true (Store.Store.exists s);
  Store.Store.destroy s;
  check_bool "all files gone" false (Store.Store.exists s);
  check_string_list "medium empty" [] (Store.Medium.files m)

(* --- Properties ------------------------------------------------------- *)

let payload_gen =
  (* Arbitrary bytes, including empties, NULs and the frame magic. *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 64))

let payloads_arb =
  QCheck.make
    ~print:(fun ps -> String.concat "," (List.map String.escaped ps))
    QCheck.Gen.(list_size (int_bound 12) payload_gen)

let prop_wal_round_trip =
  QCheck.Test.make ~name:"store: wal record round trip" ~count:300 payloads_arb
    (fun payloads ->
      let m = Store.Medium.memory () in
      List.iter (Store.Wal.append m ~name:"log") payloads;
      let r = Store.Wal.recover m ~name:"log" in
      r.Store.Wal.records = payloads && not r.Store.Wal.truncated)

let prop_every_prefix_recovers =
  QCheck.Test.make ~name:"store: every wal prefix recovers" ~count:100
    payloads_arb (fun payloads ->
      let m = Store.Medium.memory () in
      List.iter (Store.Wal.append m ~name:"log") payloads;
      let file =
        match Store.Medium.read m ~name:"log" with Some s -> s | None -> ""
      in
      let ok = ref true in
      for cut = 0 to String.length file do
        let m2 = Store.Medium.memory () in
        Store.Medium.append m2 ~name:"log" (String.sub file 0 cut);
        Store.Medium.sync m2 ~name:"log";
        let r = Store.Wal.recover m2 ~name:"log" in
        (* The records of any byte-prefix are a prefix of the original
           records, and replay stops exactly at a record boundary. *)
        let n = List.length r.Store.Wal.records in
        if
          n > List.length payloads
          || r.Store.Wal.records <> List.filteri (fun i _ -> i < n) payloads
          || r.Store.Wal.valid_len > cut
        then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "wal round trip" `Quick test_wal_round_trip;
    Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail_truncates;
    Alcotest.test_case "wal corrupt byte" `Quick test_wal_corrupt_byte_truncates;
    Alcotest.test_case "snapshot round trip" `Quick test_snapshot_round_trip;
    Alcotest.test_case "snapshot corruption" `Quick test_snapshot_corruption_detected;
    Alcotest.test_case "crash loses unsynced" `Quick test_crash_lose_unsynced;
    Alcotest.test_case "crash scripted outcomes" `Quick test_crash_scripted_outcomes;
    Alcotest.test_case "write_atomic durable" `Quick test_write_atomic_survives_crash;
    Alcotest.test_case "store checkpoint+replay" `Quick test_store_checkpoint_and_replay;
    Alcotest.test_case "store generation guard" `Quick test_store_generation_guard;
    Alcotest.test_case "store destroy" `Quick test_store_destroy;
    QCheck_alcotest.to_alcotest prop_wal_round_trip;
    QCheck_alcotest.to_alcotest prop_every_prefix_recovers;
  ]
