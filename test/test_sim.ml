(* Tests for the discrete-event core: deterministic event ordering,
   latency draws, the engine-backed network and consumer paths, the
   periodic clock events, and the observational equivalence of the
   event-driven and legacy synchronous stacks. *)
open Ldap
module Sim = Ldap_sim
module Resync = Ldap_resync
module Replication = Ldap_replication
module Selection = Ldap_selection
module Topology = Ldap_topology

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let org = Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let person name ?(dept = "100") () =
  Entry.make
    (dn (Printf.sprintf "cn=%s,o=xyz" name))
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]);
      ("sn", [ name ]);
      ("departmentNumber", [ dept ]);
    ]

let make_backend () =
  let b = Backend.create ~indexed:[ "departmentnumber" ] schema in
  (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
  b

let apply b op = match Backend.apply b op with Ok _ -> () | Error e -> failwith e

let dept_query dept =
  Query.make ~base:(dn "o=xyz") (f (Printf.sprintf "(departmentNumber=%s)" dept))

(* --- Engine core ----------------------------------------------------- *)

let test_event_order () =
  let e = Sim.Engine.create () in
  let trace = ref [] in
  let mark label () = trace := (label, Sim.Engine.now e) :: !trace in
  Sim.Engine.schedule e ~time:5 (mark "a5");
  Sim.Engine.schedule e ~time:3 (mark "b3");
  Sim.Engine.schedule e ~time:5 (mark "c5");
  Sim.Engine.after e ~delay:1 (fun () ->
      mark "d1" ();
      (* Scheduling from inside an event interleaves by time. *)
      Sim.Engine.after e ~delay:3 (mark "e4"));
  Sim.Engine.run e;
  Alcotest.(check (list (pair string int)))
    "time order, ties broken by scheduling order"
    [ ("d1", 1); ("b3", 3); ("e4", 4); ("a5", 5); ("c5", 5) ]
    (List.rev !trace);
  check_int "clock at last event" 5 (Sim.Engine.now e);
  check_int "queue drained" 0 (Sim.Engine.pending e)

let test_schedule_bounds () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~time:10 ignore;
  Sim.Engine.run e;
  check_bool "scheduling in the past rejected" true
    (match Sim.Engine.schedule e ~time:3 ignore with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* [after] clamps negative delays to zero instead. *)
  let fired = ref false in
  Sim.Engine.after e ~delay:(-5) (fun () -> fired := true);
  Sim.Engine.run e;
  check_bool "negative delay clamped to now" true !fired;
  check_int "clock unchanged by clamped event" 10 (Sim.Engine.now e)

let test_every_and_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  Sim.Engine.every e ~every:10 ~until:35 (fun () -> incr count);
  Sim.Engine.run e;
  check_int "three firings within the bound" 3 !count;
  check_int "quiescent at the last occurrence" 30 (Sim.Engine.now e);
  let e2 = Sim.Engine.create () in
  let count2 = ref 0 in
  Sim.Engine.every e2 ~every:10 ~until:100 (fun () -> incr count2);
  Sim.Engine.run_until e2 ~time:45;
  check_int "four firings by 45" 4 !count2;
  check_int "clock advanced exactly to the bound" 45 (Sim.Engine.now e2);
  check_bool "later ticks still pending" true (Sim.Engine.pending e2 > 0)

let test_latency_draws () =
  let e = Sim.Engine.create ~seed:42 () in
  check_int "zero" 0 (Sim.Engine.draw e Sim.Latency.Zero);
  check_int "fixed" 7 (Sim.Engine.draw e (Sim.Latency.Fixed 7));
  for _ = 1 to 200 do
    let d = Sim.Engine.draw e (Sim.Latency.Uniform { lo = 2; hi = 8 }) in
    check_bool "uniform within bounds" true (d >= 2 && d <= 8)
  done;
  for _ = 1 to 200 do
    check_bool "exponential nonnegative" true
      (Sim.Engine.draw e (Sim.Latency.Exponential { mean = 5 }) >= 0)
  done;
  (* Same seed, same call sequence: identical draws. *)
  let a = Sim.Engine.create ~seed:9 () and b = Sim.Engine.create ~seed:9 () in
  for _ = 1 to 50 do
    check_int "deterministic stream"
      (Sim.Engine.draw a (Sim.Latency.Uniform { lo = 0; hi = 1000 }))
      (Sim.Engine.draw b (Sim.Latency.Uniform { lo = 0; hi = 1000 }))
  done

(* --- Engine-backed network ------------------------------------------- *)

let test_rpc_charges_round_trip () =
  (* The same exchange over the engine and over the legacy immediate
     path: identical result and accounting; only the engine advances
     virtual time. *)
  let serve () = 41 + 1 in
  let immediate = Network.create () in
  let r0 =
    Network.rpc immediate ~from:"c" ~host:"s" ~request_bytes:10
      ~reply_bytes:(fun r -> r) serve
  in
  let net = Network.create () in
  let engine = Sim.Engine.create () in
  Network.attach_engine net engine;
  Network.set_link_latency net ~a:"c" ~b:"s" (Sim.Latency.Fixed 3);
  let r1 =
    Network.rpc net ~from:"c" ~host:"s" ~request_bytes:10
      ~reply_bytes:(fun r -> r) serve
  in
  check_bool "same result" true (r0 = Ok 42 && r1 = Ok 42);
  check_bool "same accounting" true (Network.stats immediate = Network.stats net);
  check_int "round trip charged" 6 (Sim.Engine.now engine)

let test_drop_reply_timing () =
  (* A dropped reply still runs the server thunk (its side effects
     stand) and the client only learns about the loss at the timeout. *)
  let net = Network.create () in
  let engine = Sim.Engine.create () in
  Network.attach_engine net engine;
  Network.set_default_latency net (Sim.Latency.Fixed 4);
  let faults = Network.Faults.create () in
  Network.Faults.script faults [ Network.Faults.Drop_reply ];
  let served_at = ref (-1) in
  let r =
    Network.rpc net ~faults ~from:"c" ~host:"s" ~request_bytes:5
      ~reply_bytes:(fun () -> 5)
      (fun () -> served_at := Sim.Engine.now engine)
  in
  check_bool "timeout surfaced" true (r = Error Network.Timeout);
  check_int "served after one leg" 4 !served_at;
  check_int "client waited the full round trip" 8 (Sim.Engine.now engine);
  check_int "loss accounted" 1 (Network.stats net).Network.dropped_pdus

(* --- Backoff as virtual time (the satellite fix) --------------------- *)

let test_backoff_advances_clock () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  let net = Network.create () in
  let engine = Sim.Engine.create () in
  Network.attach_engine net engine;
  let faults = Network.Faults.create () in
  let transport = Resync.Transport.create ~faults net in
  Resync.Transport.add_master transport ~name:"m" (Resync.Master.create b);
  let consumer = Resync.Consumer.create schema (dept_query "7") in
  (match Resync.Consumer.sync_over consumer transport ~host:"m" with
  | Ok _ -> ()
  | Error e -> failwith (Resync.Consumer.sync_error_to_string e));
  let t0 = Sim.Engine.now engine in
  Network.Faults.script faults
    [ Network.Faults.Drop_request; Network.Faults.Drop_request ];
  match Resync.Consumer.sync_over consumer transport ~host:"m" with
  | Ok o ->
      check_int "three attempts" 3 o.Resync.Consumer.attempts;
      (* Links default to zero latency, so every tick of elapsed
         virtual time is backoff: 1 after the first failure, 2 after
         the second. *)
      check_int "backoff stat" 3 o.Resync.Consumer.backoff;
      check_int "stat equals elapsed virtual time" (Sim.Engine.now engine - t0)
        o.Resync.Consumer.backoff
  | Error e -> failwith (Resync.Consumer.sync_error_to_string e)

let test_replica_backoff_stat () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  let net = Network.create () in
  let engine = Sim.Engine.create () in
  Network.attach_engine net engine;
  let faults = Network.Faults.create () in
  let transport = Resync.Transport.create ~faults net in
  Resync.Transport.add_master transport ~name:"m" (Resync.Master.create b);
  let replica =
    Replication.Filter_replica.create_over ~host:"r" transport ~master_host:"m"
  in
  (match Replication.Filter_replica.install_filter replica (dept_query "7") with
  | Ok () -> ()
  | Error e -> failwith e);
  apply b (Update.add (person "b" ~dept:"7" ()));
  let t0 = Sim.Engine.now engine in
  Network.Faults.script faults
    [ Network.Faults.Drop_request; Network.Faults.Drop_request ];
  Replication.Filter_replica.sync replica;
  let stats = Replication.Filter_replica.stats replica in
  check_int "two retries" 2 stats.Replication.Stats.sync_retries;
  check_int "backoff ticks equal elapsed virtual time"
    (Sim.Engine.now engine - t0) stats.Replication.Stats.sync_backoff_ticks

(* --- Periodic clock events ------------------------------------------- *)

let test_scheduled_expiry () =
  let b = make_backend () in
  let master = Resync.Master.create b in
  for _ = 1 to 3 do
    match
      Resync.Master.handle master
        { Resync.Protocol.mode = Resync.Protocol.Poll; cookie = None }
        (dept_query "7")
    with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  check_int "three sessions" 3 (Resync.Master.session_count master);
  let engine = Sim.Engine.create () in
  Resync.Master.schedule_expiry master engine ~every:5 ~until:20 ~idle_limit:0;
  Sim.Engine.run engine;
  check_int "expired on the clock" 0 (Resync.Master.session_count master);
  check_int "timer ran to its bound" 20 (Sim.Engine.now engine)

let test_scheduled_revolutions () =
  let b = make_backend () in
  let net = Network.create () in
  let transport = Resync.Transport.create net in
  Resync.Transport.add_master transport ~name:"m" (Resync.Master.create b);
  let replica =
    Replication.Filter_replica.create_over ~host:"r" transport ~master_host:"m"
  in
  let selector =
    Selection.Selector.create
      {
        Selection.Selector.rules = [];
        revolution_interval = 1000;
        size_budget = 10;
        min_hits = 1;
        include_queries = false;
      }
      replica
  in
  let engine = Sim.Engine.create () in
  Selection.Selector.schedule_revolutions selector engine ~every:10 ~until:35;
  Sim.Engine.run engine;
  check_int "three revolutions on the clock" 3
    (Selection.Selector.revolutions selector)

(* --- Engine/legacy equivalence property ------------------------------
   For the same seed (same update stream, same fault decisions) the
   event-driven engine and the legacy immediate path must leave the
   consumer with identical content, cookie and traffic accounting:
   virtual time reorders nothing observable. *)

let apply_scripted_ops b prng =
  for _ = 1 to 4 do
    let name = Printf.sprintf "q%d" (Ldap_dirgen.Prng.int prng 12) in
    match Ldap_dirgen.Prng.int prng 3 with
    | 0 ->
        ignore
          (Backend.apply b
             (Update.add
                (person name
                   ~dept:(string_of_int (7 + Ldap_dirgen.Prng.int prng 2))
                   ())))
    | 1 ->
        ignore
          (Backend.apply b
             (Update.modify
                (dn (Printf.sprintf "cn=%s,o=xyz" name))
                [ Update.replace_values "mail" [ Printf.sprintf "%s@x" name ] ]))
    | _ ->
        ignore (Backend.apply b (Update.delete (dn (Printf.sprintf "cn=%s,o=xyz" name))))
  done

let run_variant ~engine seed =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"8" ()));
  let net = Network.create () in
  if engine then begin
    let e = Sim.Engine.create ~seed () in
    Network.attach_engine net e;
    Network.set_default_latency net (Sim.Latency.Uniform { lo = 1; hi = 6 })
  end;
  (* Fault decisions come from their own stream, independent of the
     engine's latency draws, so both variants see the same outcomes. *)
  let fault_prng = Ldap_dirgen.Prng.create (seed + 1) in
  let faults =
    Network.Faults.create ~drop_request:0.15 ~drop_reply:0.15
      ~roll:(fun () -> Ldap_dirgen.Prng.float fault_prng 1.0)
      ()
  in
  let transport = Resync.Transport.create ~faults net in
  Resync.Transport.add_master transport ~name:"m" (Resync.Master.create b);
  let consumer = Resync.Consumer.create schema (dept_query "7") in
  let op_prng = Ldap_dirgen.Prng.create (seed + 2) in
  for _round = 1 to 6 do
    apply_scripted_ops b op_prng;
    ignore (Resync.Consumer.sync_over ~max_attempts:6 consumer transport ~host:"m")
  done;
  let entries =
    List.sort
      (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b))
      (Resync.Consumer.entries consumer)
  in
  (entries, Resync.Consumer.cookie consumer, (Network.stats net).Network.sync_bytes)

let prop_engine_matches_legacy =
  QCheck.Test.make ~name:"sim: engine and legacy paths are observably identical"
    ~count:40
    QCheck.(int_bound 100_000)
    (fun seed ->
      let e_entries, e_cookie, e_bytes = run_variant ~engine:true seed in
      let l_entries, l_cookie, l_bytes = run_variant ~engine:false seed in
      e_cookie = l_cookie && e_bytes = l_bytes
      && List.length e_entries = List.length l_entries
      && List.for_all2 Entry.equal e_entries l_entries)

(* --- Latency/staleness sweep shape ----------------------------------- *)

let test_latency_staleness_ordering () =
  let config = Topology.Sweep.lat_smoke_config in
  let points = Topology.Sweep.latency_staleness ~config () in
  check_int "four variants" 4 (List.length points);
  let find shape faults =
    List.find
      (fun (p : Topology.Sweep.lat_point) ->
        p.Topology.Sweep.lp_shape = shape && p.Topology.Sweep.lp_faults = faults)
      points
  in
  let tree_shape = Printf.sprintf "tree%d" config.Topology.Sweep.lat_arity in
  let star_clean = find "star" "clean" and tree_clean = find tree_shape "clean" in
  let star_lossy = find "star" "lossy" and tree_lossy = find tree_shape "lossy" in
  List.iter
    (fun (p : Topology.Sweep.lat_point) ->
      check_bool "polls sampled" true (p.Topology.Sweep.lp_polls > 0);
      check_bool "staleness sampled" true (p.lp_stale_samples > 0);
      check_bool "nonzero response time" true (p.lp_resp_p50 > 0);
      check_bool "nonzero staleness" true (p.lp_stale_p50 > 0);
      check_bool "percentiles ordered" true
        (p.lp_resp_p50 <= p.lp_resp_p90
        && p.lp_resp_p90 <= p.lp_resp_p99
        && p.lp_resp_p99 <= p.lp_resp_max
        && p.lp_stale_p50 <= p.lp_stale_p90
        && p.lp_stale_p90 <= p.lp_stale_p99
        && p.lp_stale_p99 <= p.lp_stale_max))
    points;
  check_bool "tree staleness >= star (extra tier)" true
    (tree_clean.Topology.Sweep.lp_stale_p90 >= star_clean.Topology.Sweep.lp_stale_p90);
  check_bool "lossy response >= clean (retries burn virtual time)" true
    (star_lossy.Topology.Sweep.lp_resp_p90 >= star_clean.Topology.Sweep.lp_resp_p90
    && tree_lossy.Topology.Sweep.lp_resp_p90 >= tree_clean.Topology.Sweep.lp_resp_p90);
  (* Same config, same seed: the sweep is deterministic. *)
  let points2 = Topology.Sweep.latency_staleness ~config () in
  check_bool "deterministic rerun" true (points = points2)

(* --- Cancellable events ----------------------------------------------- *)

let test_cancellable_events () =
  let e = Sim.Engine.create () in
  let fired = ref [] in
  let mark label () = fired := label :: !fired in
  let h1 = Sim.Engine.schedule_cancellable e ~time:5 (mark "a") in
  let _h2 = Sim.Engine.schedule_cancellable e ~time:7 (mark "b") in
  Sim.Engine.cancel h1;
  check_bool "handle reports cancellation" true (Sim.Engine.cancelled h1);
  (* The queue entry stays: the clock still visits time 5 (determinism
     preserved), but the thunk is a no-op. *)
  check_int "cancelled event still queued" 2 (Sim.Engine.pending e);
  Sim.Engine.run e;
  Alcotest.(check (list string)) "only the live event fired" [ "b" ] !fired;
  check_int "clock visited the final event" 7 (Sim.Engine.now e)

let test_cancellable_series () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let h =
    Sim.Engine.every_cancellable e ~every:10 ~until:100 (fun () -> incr count)
  in
  (* Cancel mid-series from inside an event: one handle silences the
     whole chain of reschedules. *)
  Sim.Engine.schedule e ~time:35 (fun () -> Sim.Engine.cancel h);
  Sim.Engine.run e;
  check_int "ticks before cancellation" 3 !count;
  let h2 = Sim.Engine.after_cancellable e ~delay:5 (fun () -> incr count) in
  Sim.Engine.cancel h2;
  Sim.Engine.run e;
  check_int "cancelled after_cancellable never fires" 3 !count

let suite =
  [
    Alcotest.test_case "event order deterministic" `Quick test_event_order;
    Alcotest.test_case "cancellable events" `Quick test_cancellable_events;
    Alcotest.test_case "cancellable series" `Quick test_cancellable_series;
    Alcotest.test_case "schedule bounds" `Quick test_schedule_bounds;
    Alcotest.test_case "every + run_until" `Quick test_every_and_run_until;
    Alcotest.test_case "latency draws" `Quick test_latency_draws;
    Alcotest.test_case "rpc charges round trip" `Quick test_rpc_charges_round_trip;
    Alcotest.test_case "drop_reply timing" `Quick test_drop_reply_timing;
    Alcotest.test_case "backoff advances clock" `Quick test_backoff_advances_clock;
    Alcotest.test_case "replica backoff stat" `Quick test_replica_backoff_stat;
    Alcotest.test_case "scheduled expiry" `Quick test_scheduled_expiry;
    Alcotest.test_case "scheduled revolutions" `Quick test_scheduled_revolutions;
    Alcotest.test_case "latency/staleness ordering" `Quick test_latency_staleness_ordering;
    QCheck_alcotest.to_alcotest prop_engine_matches_legacy;
  ]
