(* Tests for the cascading replication topology: tree = star
   convergence, referral admission, degraded resume through an
   intermediate node, re-parenting after a node death, and a
   randomized routed = naive equivalence property for the node's
   persist relay on a 2-tier chain. *)
open Ldap
open Ldap_resync
module R = Ldap_replication
module T = Ldap_topology

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let org = Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let person name ?(dept = "1") () =
  Entry.make
    (dn (Printf.sprintf "cn=%s,o=xyz" name))
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]);
      ("sn", [ name ]);
      ("departmentNumber", [ dept ]);
    ]

let make_backend () =
  let b = Backend.create ~indexed:[ "departmentnumber" ] schema in
  (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
  b

let apply b op = match Backend.apply b op with Ok _ -> () | Error e -> failwith e

let dept_query d =
  Query.make ~base:(dn "o=xyz") (f (Printf.sprintf "(departmentNumber=%d)" d))

(* A directory with [depts] departments of [each] people, named so the
   same update script can be replayed onto twin backends. *)
let build_directory ?(depts = 8) ?(each = 5) () =
  let b = make_backend () in
  for d = 1 to depts do
    for i = 1 to each do
      apply b
        (Update.add (person (Printf.sprintf "p%d_%d" d i) ~dept:(string_of_int d) ()))
    done
  done;
  b

let update_burst b =
  apply b (Update.add (person "new3" ~dept:"3" ()));
  apply b (Update.delete (dn "cn=p1_1,o=xyz"));
  apply b
    (Update.modify (dn "cn=p2_1,o=xyz")
       [ Update.replace_values "departmentNumber" [ "5" ] ]);
  apply b
    (Update.modify (dn "cn=p4_2,o=xyz")
       [ Update.replace_values "mail" [ "p4_2@xyz" ] ])

let must = function Ok v -> v | Error e -> failwith e

let sorted_dns entries =
  List.sort compare (List.map (fun e -> Dn.canonical (Entry.dn e)) entries)

let leaf_contents t =
  List.map
    (fun leaf ->
      List.concat_map
        (fun q -> sorted_dns (T.Leaf.content leaf q))
        (T.Leaf.subscriptions leaf))
    (T.Topology.leaves t)

(* --- Tree vs star ----------------------------------------------------- *)

let build_shape shape n =
  let b = build_directory () in
  let covers = List.init 8 (fun d -> dept_query (d + 1)) in
  let leaf_queries = List.init n (fun i -> dept_query (1 + (i mod 8))) in
  (b, must (T.Topology.build ~shape ~covers ~leaf_queries b))

let test_tree_matches_star () =
  let n = 1000 in
  let b_star, star = build_shape T.Topology.Star n in
  let b_tree, tree = build_shape (T.Topology.Tree { arity = 4 }) n in
  (* Same burst on both twins, then run to convergence. *)
  update_burst b_star;
  update_burst b_tree;
  (match T.Topology.rounds_to_converge star with
  | Some r -> check_int "star lag is one round" 1 r
  | None -> Alcotest.fail "star did not converge");
  (match T.Topology.rounds_to_converge tree with
  | Some r -> check_int "tree lag is two rounds" 2 r
  | None -> Alcotest.fail "tree did not converge");
  (* Every leaf of the tree holds exactly what its star twin holds. *)
  check_bool "tree contents = star contents" true
    (leaf_contents star = leaf_contents tree);
  (* The root of the tree serves only the interior nodes: 4 nodes x 8
     covers, regardless of the 1000 leaves; the star holds one session
     per leaf. *)
  check_int "star root sessions" n
    (Master.session_count (T.Topology.master star));
  check_int "tree root sessions" 32
    (Master.session_count (T.Topology.master tree));
  check_bool "tree root bytes below star" true
    (T.Topology.root_link_bytes tree < T.Topology.root_link_bytes star)

let test_root_sessions_flat_in_leaves () =
  let _, small = build_shape (T.Topology.Tree { arity = 4 }) 80 in
  let _, large = build_shape (T.Topology.Tree { arity = 4 }) 400 in
  check_int "same root sessions at 80 and 400 leaves"
    (Master.session_count (T.Topology.master small))
    (Master.session_count (T.Topology.master large))

let test_chain_lag_is_depth () =
  let b, t = build_shape (T.Topology.Chain 2) 8 in
  apply b (Update.add (person "late7" ~dept:"7" ()));
  match T.Topology.rounds_to_converge t with
  | Some r -> check_int "chain of 2 lags three rounds" 3 r
  | None -> Alcotest.fail "chain did not converge"

(* --- Admission and referrals ------------------------------------------ *)

let node_fixture ?(covers = [ dept_query 7 ]) () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  apply b (Update.add (person "c" ~dept:"8" ()));
  let t = T.Topology.create b in
  let node =
    must (T.Topology.add_node t ~name:"n1" ~parent:(T.Topology.root t) ~covers)
  in
  (b, t, node)

let test_referral_on_uncovered_subscription () =
  let _, t, node = node_fixture () in
  (* Directly: the node rejects with a referral to its upstream. *)
  (match
     T.Node.handle node { Protocol.mode = Protocol.Poll; cookie = None } (dept_query 8)
   with
  | Ok _ -> Alcotest.fail "uncovered subscription admitted"
  | Error msg -> (
      match T.Node.referral_of_error msg with
      | None -> Alcotest.fail ("not a referral: " ^ msg)
      | Some url ->
          check_bool "refers to the root" true
            ((Referral.parse_exn url).Referral.host = T.Topology.root t)));
  (* Through a leaf: the subscription chases the referral to the root
     and is served there. *)
  let leaf = must (T.Topology.add_leaf t ~name:"l1" ~parent:"n1" (dept_query 8)) in
  check_bool "leaf re-parented to root" true (T.Leaf.parent leaf = T.Topology.root t);
  check_int "content served upstream" 1 (List.length (T.Leaf.content leaf (dept_query 8)))

let test_admitted_subscription_served_at_node () =
  let b, t, _ = node_fixture () in
  let leaf = must (T.Topology.add_leaf t ~name:"l1" ~parent:"n1" (dept_query 7)) in
  check_bool "leaf stayed at the node" true (T.Leaf.parent leaf = "n1");
  check_int "initial content" 2 (List.length (T.Leaf.content leaf (dept_query 7)));
  (* An update propagates root -> node -> leaf in two rounds. *)
  apply b (Update.add (person "d" ~dept:"7" ()));
  T.Topology.sync_round t;
  T.Topology.sync_round t;
  check_int "update arrived through the node" 3
    (List.length (T.Leaf.content leaf (dept_query 7)))

(* --- Degraded resume through an intermediate node --------------------- *)

let test_reparented_cookie_degrades_with_retain () =
  let b, t, _ = node_fixture () in
  let consumer = Consumer.create schema (dept_query 7) in
  let transport = T.Topology.transport t in
  let sync () =
    match Consumer.sync_over consumer transport ~host:"n1" with
    | Ok outcome -> outcome
    | Error e -> failwith (Consumer.sync_error_to_string e)
  in
  ignore (sync ());
  check_int "initial content" 2 (Consumer.size consumer);
  (* One entry changes, one stays; the node picks the change up. *)
  apply b
    (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "mail" [ "a@x" ] ]);
  T.Topology.sync_round t;
  (* Simulate a re-parent onto this node: the translated cookie keeps
     the CSN but carries the foreign-session id, so the node must
     answer degraded — resending the changed entry, retaining the
     unchanged one. *)
  (match Consumer.cookie consumer with
  | Some c -> Consumer.set_cookie consumer (Protocol.reparent_cookie c)
  | None -> Alcotest.fail "no cookie");
  let outcome = sync () in
  check_bool "degraded reply" true
    (outcome.Consumer.reply.Protocol.kind = Protocol.Degraded);
  check_bool "recovery counted" true outcome.Consumer.resynced;
  let kinds =
    List.sort_uniq compare
      (List.map Action.kind_name outcome.Consumer.reply.Protocol.actions)
  in
  check_bool "retain for the unchanged entry" true (List.mem "retain" kinds);
  check_int "only the changed entry retransmitted" 1
    (Protocol.entries_cost outcome.Consumer.reply);
  check_int "content intact" 2 (Consumer.size consumer)

let test_trimmed_root_history_heals_through_node () =
  let b, t, node = node_fixture () in
  let leaf = must (T.Topology.add_leaf t ~name:"l1" ~parent:"n1" (dept_query 7)) in
  (* The root forgets the node's sessions (history trimmed / expired)
     while updates keep flowing. *)
  apply b (Update.add (person "d" ~dept:"7" ()));
  Master.expire_sessions (T.Topology.master t) ~idle_limit:0;
  check_int "no sessions left at root" 0
    (Master.session_count (T.Topology.master t));
  T.Topology.sync_round t;
  T.Topology.sync_round t;
  check_bool "node recovered by degraded resync" true
    ((T.Node.stats node).R.Stats.resyncs >= 1);
  check_bool "leaf converged through the recovered node" true
    (T.Topology.leaf_converged t leaf)

(* --- Killing an interior node ----------------------------------------- *)

let test_kill_node_reparents_and_converges () =
  let b, t = build_shape (T.Topology.Tree { arity = 2 }) 8 in
  check_int "two interior nodes" 2 (List.length (T.Topology.nodes t));
  let victim = List.hd (T.Topology.nodes t) in
  let orphan_names =
    List.filter_map
      (fun leaf ->
        if T.Leaf.parent leaf = T.Node.host victim then Some (T.Leaf.name leaf)
        else None)
      (T.Topology.leaves t)
  in
  check_bool "victim served some leaves" true (orphan_names <> []);
  (* Updates in flight when the node dies mid-stream. *)
  update_burst b;
  T.Topology.kill_node t victim;
  (match T.Topology.rounds_to_converge t with
  | Some _ -> ()
  | None -> Alcotest.fail "did not converge after node death");
  List.iter
    (fun leaf ->
      if List.mem (T.Leaf.name leaf) orphan_names then begin
        check_bool
          (T.Leaf.name leaf ^ " re-parented to the root")
          true
          (T.Leaf.parent leaf = T.Topology.root t);
        check_bool
          (T.Leaf.name leaf ^ " resumed degraded, not from scratch")
          true
          ((T.Leaf.stats leaf).R.Stats.resyncs >= 1)
      end)
    (T.Topology.leaves t);
  check_bool "all leaves converged" true (T.Topology.converged t)

(* --- Routed = naive equivalence on a 2-tier chain ---------------------
   Twin chains fed the same update script, the node (and root) of one
   using predicate-indexed relay dispatch and the other naive fan-out.
   Every downstream observable — poll replies, persist push streams,
   session counts — must be identical. *)

let chain_filters =
  [
    ("(departmentnumber=7)", false);
    ("(departmentnumber=7)", true);
    ("(departmentnumber=8)", true);
    ("(departmentnumber>=8)", true);
    ("(sn=p1*)", true);
    ("(sn=p2*)", false);
  ]

type chain_op =
  | Op_add of int * int
  | Op_delete of int
  | Op_move_dept of int * int
  | Op_set_mail of int
  | Op_round  (* node pulls from root, relaying persist pushes *)
  | Op_poll  (* downstream consumers poll the node *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun i d -> Op_add (i, d)) (0 -- 15) (7 -- 9));
        (2, map (fun i -> Op_delete i) (0 -- 15));
        (3, map2 (fun i d -> Op_move_dept (i, d)) (0 -- 15) (7 -- 9));
        (2, map (fun i -> Op_set_mail i) (0 -- 15));
        (3, return Op_round);
        (2, return Op_poll);
      ])

let op_print = function
  | Op_add (i, d) -> Printf.sprintf "add(%d,%d)" i d
  | Op_delete i -> Printf.sprintf "delete(%d)" i
  | Op_move_dept (i, d) -> Printf.sprintf "move(%d,%d)" i d
  | Op_set_mail i -> Printf.sprintf "mail(%d)" i
  | Op_round -> "round"
  | Op_poll -> "poll"

let action_equal a b =
  match (a, b) with
  | Action.Add e1, Action.Add e2 | Action.Modify e1, Action.Modify e2 ->
      Entry.equal e1 e2
  | Action.Delete d1, Action.Delete d2 | Action.Retain d1, Action.Retain d2 ->
      Dn.equal d1 d2
  | _ -> false

let reply_equal (a : Protocol.reply) (b : Protocol.reply) =
  a.Protocol.kind = b.Protocol.kind
  && a.Protocol.cookie = b.Protocol.cookie
  && List.length a.Protocol.actions = List.length b.Protocol.actions
  && List.for_all2 action_equal a.Protocol.actions b.Protocol.actions

type twin_session = {
  query : Query.t;
  persist : bool;
  mutable cookies : string option * string option;  (* routed, naive *)
  pushed_r : Action.t list ref;
  pushed_n : Action.t list ref;
}

let chain_person i ~dept =
  person (Printf.sprintf "p%d" i) ~dept:(string_of_int dept) ()

let make_chain dispatch =
  let b = make_backend () in
  List.iter (fun i -> apply b (Update.add (chain_person i ~dept:7))) [ 0; 1; 2 ];
  let t = T.Topology.create ~dispatch b in
  let covers =
    [
      Query.make ~base:(dn "o=xyz") (f "(departmentnumber=*)");
      Query.make ~base:(dn "o=xyz") (f "(sn=p*)");
    ]
  in
  let node =
    must (T.Topology.add_node ~dispatch t ~name:"n1" ~parent:(T.Topology.root t) ~covers)
  in
  (b, t, node)

let sync_session node session ~cookie ~pushed =
  let mode = if session.persist then Protocol.Persist else Protocol.Poll in
  let push =
    if session.persist then
      Some (Protocol.push_of_fn (fun a -> pushed := a :: !pushed))
    else None
  in
  match T.Node.handle node ?push { Protocol.mode; cookie } session.query with
  | Ok reply -> reply
  | Error e -> failwith e

let equivalent_chain_run ops =
  let br, tr, nr = make_chain Master.Routed in
  let bn, tn, nn = make_chain Master.Naive in
  let apply_both op =
    ignore (Backend.apply br op);
    ignore (Backend.apply bn op)
  in
  let sessions =
    List.map
      (fun (fs, persist) ->
        {
          query = Query.make ~base:(dn "o=xyz") (f fs);
          persist;
          cookies = (None, None);
          pushed_r = ref [];
          pushed_n = ref [];
        })
      chain_filters
  in
  let sync_all () =
    List.iter
      (fun s ->
        let cr, cn = s.cookies in
        let rr = sync_session nr s ~cookie:cr ~pushed:s.pushed_r in
        let rn = sync_session nn s ~cookie:cn ~pushed:s.pushed_n in
        if not (reply_equal rr rn) then
          QCheck.Test.fail_reportf "divergent reply for %s (%s)"
            (Filter.to_string s.query.Query.filter)
            (if s.persist then "persist" else "poll");
        s.cookies <- (rr.Protocol.cookie, rn.Protocol.cookie))
      sessions
  in
  let round () =
    T.Node.sync nr;
    T.Node.sync nn
  in
  round ();
  sync_all ();
  let name i = Printf.sprintf "cn=p%d,o=xyz" i in
  List.iter
    (fun op ->
      match op with
      | Op_add (i, d) -> apply_both (Update.add (chain_person i ~dept:d))
      | Op_delete i -> apply_both (Update.delete (dn (name i)))
      | Op_move_dept (i, d) ->
          apply_both
            (Update.modify (dn (name i))
               [ Update.replace_values "departmentNumber" [ string_of_int d ] ])
      | Op_set_mail i ->
          apply_both
            (Update.modify (dn (name i))
               [ Update.replace_values "mail" [ Printf.sprintf "p%d@new" i ] ])
      | Op_round -> round ()
      | Op_poll -> sync_all ())
    ops;
  round ();
  sync_all ();
  List.iter
    (fun s ->
      let pr = List.rev !(s.pushed_r) and pn = List.rev !(s.pushed_n) in
      if
        not (List.length pr = List.length pn && List.for_all2 action_equal pr pn)
      then
        QCheck.Test.fail_reportf "divergent push stream for %s (%d vs %d)"
          (Filter.to_string s.query.Query.filter)
          (List.length pr) (List.length pn))
    sessions;
  if T.Node.session_count nr <> T.Node.session_count nn then
    QCheck.Test.fail_reportf "divergent session counts";
  if T.Node.persistent_count nr <> T.Node.persistent_count nn then
    QCheck.Test.fail_reportf "divergent persistent counts";
  ignore (tr, tn);
  true

let chain_equivalence_test =
  QCheck.Test.make ~count:12 ~name:"node routed = naive (2-tier chain)"
    (QCheck.make
       ~print:(fun ops -> String.concat " " (List.map op_print ops))
       QCheck.Gen.(list_size (60 -- 100) op_gen))
    equivalent_chain_run

(* --- Streaming = materialized across history strategies ---------------
   For a random update script and random poll points, the streamed
   action multiset applied to the previous snapshot must reproduce the
   materialized selection (eval_over_entries over the backend's entry
   stream) exactly — under all three history strategies.  The lossy
   strategies (Changelog, Tombstone) may over-send conservative
   deletes and unchanged re-adds but must still reconcile; for the
   lossless Session_history strategy the incremental stream's per-DN
   net effect is additionally required to be exactly the diff, with
   no gratuitous resends. *)

type sm_op =
  | Sm_add of int * int
  | Sm_del of int
  | Sm_move of int * int
  | Sm_mail of int
  | Sm_poll

let sm_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun i d -> Sm_add (i, d)) (0 -- 15) (7 -- 9));
        (2, map (fun i -> Sm_del i) (0 -- 15));
        (3, map2 (fun i d -> Sm_move (i, d)) (0 -- 15) (7 -- 9));
        (2, map (fun i -> Sm_mail i) (0 -- 15));
        (4, return Sm_poll);
      ])

let sm_print = function
  | Sm_add (i, d) -> Printf.sprintf "add(%d,%d)" i d
  | Sm_del i -> Printf.sprintf "del(%d)" i
  | Sm_move (i, d) -> Printf.sprintf "move(%d,%d)" i d
  | Sm_mail i -> Printf.sprintf "mail(%d)" i
  | Sm_poll -> "poll"

let sm_queries =
  [ "(departmentnumber=7)"; "(departmentnumber>=8)"; "(sn=p1*)" ]

(* dn -> content hash of the selected image. *)
let oracle_map q b =
  let h = Hashtbl.create 32 in
  List.iter
    (fun e -> Hashtbl.replace h (Dn.canonical (Entry.dn e)) (Entry.content_hash64 e))
    (R.Replica.eval_over_entries schema q (Backend.entries_seq b));
  h

let hashtbl_dump h =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let sm_run_strategy strategy ops =
  let b = make_backend () in
  List.iter (fun i -> apply b (Update.add (chain_person i ~dept:7))) [ 0; 1; 2 ];
  let m = Master.create ~strategy b in
  let mail_seq = ref 0 in
  let sessions =
    List.map
      (fun fs ->
        let q = Query.make ~base:(dn "o=xyz") (f fs) in
        (q, Consumer.create schema q, Hashtbl.create 32))
      sm_queries
  in
  let poll () =
    List.iter
      (fun (q, consumer, snapshot) ->
        let reply =
          match Consumer.sync consumer m with
          | Ok r -> r
          | Error e -> failwith e
        in
        let prev = Hashtbl.copy snapshot in
        List.iter
          (fun a ->
            match a with
            | Action.Add e | Action.Modify e ->
                Hashtbl.replace snapshot
                  (Dn.canonical (Entry.dn e))
                  (Entry.content_hash64 e)
            | Action.Delete d -> Hashtbl.remove snapshot (Dn.canonical d)
            | Action.Retain _ -> ())
          reply.Protocol.actions;
        let oracle = oracle_map q b in
        if hashtbl_dump snapshot <> hashtbl_dump oracle then
          QCheck.Test.fail_reportf
            "%s: streamed snapshot diverged from materialized selection for %s"
            (match strategy with
            | Master.Session_history -> "session-history"
            | Master.Changelog -> "changelog"
            | Master.Tombstone -> "tombstone")
            (Filter.to_string q.Query.filter);
        (* The consumer's own application must agree with both. *)
        if not (Dn.Set.equal (Content.current_dns b q) (Consumer.dns consumer))
        then QCheck.Test.fail_reportf "consumer content diverged";
        (* Lossless strategy: the incremental stream carries the net
           diff and nothing gratuitous.  The buffer is per-update, so
           one DN may receive several actions (delete then re-add);
           the per-DN *net* effect must match the materialized diff,
           and a DN outside the diff may only appear through such a
           multi-action chain — a single-action resend of an unchanged
           image would be a redundant transmission. *)
        if
          strategy = Master.Session_history
          && reply.Protocol.kind = Protocol.Incremental
        then begin
          let net = Hashtbl.create 8 and counts = Hashtbl.create 8 in
          List.iter
            (fun a ->
              let record k v =
                Hashtbl.replace net k v;
                Hashtbl.replace counts k
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
              in
              match a with
              | Action.Add e | Action.Modify e ->
                  record
                    (Dn.canonical (Entry.dn e))
                    (Some (Entry.content_hash64 e))
              | Action.Delete d -> record (Dn.canonical d) None
              | Action.Retain _ -> ())
            reply.Protocol.actions;
          let fail fmt = QCheck.Test.fail_reportf fmt (Filter.to_string q.Query.filter) in
          let in_diff = Hashtbl.create 8 in
          Hashtbl.iter
            (fun k v ->
              match Hashtbl.find_opt prev k with
              | Some v' when v' = v -> ()
              | _ ->
                  Hashtbl.replace in_diff k ();
                  if Hashtbl.find_opt net k <> Some (Some v) then
                    fail "session-history stream for %s misses a changed member")
            oracle;
          Hashtbl.iter
            (fun k _ ->
              if not (Hashtbl.mem oracle k) then begin
                Hashtbl.replace in_diff k ();
                if Hashtbl.find_opt net k <> Some None then
                  fail "session-history stream for %s misses a departure"
              end)
            prev;
          Hashtbl.iter
            (fun k _ ->
              if
                (not (Hashtbl.mem in_diff k))
                && Hashtbl.find_opt counts k = Some 1
              then fail "session-history stream for %s resends an unchanged entry")
            net
        end)
      sessions
  in
  let name i = Printf.sprintf "cn=p%d,o=xyz" i in
  poll ();
  List.iter
    (fun op ->
      match op with
      | Sm_add (i, d) -> ignore (Backend.apply b (Update.add (chain_person i ~dept:d)))
      | Sm_del i -> ignore (Backend.apply b (Update.delete (dn (name i))))
      | Sm_move (i, d) ->
          ignore
            (Backend.apply b
               (Update.modify (dn (name i))
                  [ Update.replace_values "departmentNumber" [ string_of_int d ] ]))
      | Sm_mail i ->
          incr mail_seq;
          ignore
            (Backend.apply b
               (Update.modify (dn (name i))
                  [
                    Update.replace_values "mail"
                      [ Printf.sprintf "p%d-%d@xyz" i !mail_seq ];
                  ]))
      | Sm_poll -> poll ())
    ops;
  poll ();
  true

let sm_run ops =
  List.for_all
    (fun strategy -> sm_run_strategy strategy ops)
    [ Master.Session_history; Master.Changelog; Master.Tombstone ]

let streaming_materialized_test =
  QCheck.Test.make ~count:15
    ~name:"poll stream = materialized selection (3 strategies)"
    (QCheck.make
       ~print:(fun ops -> String.concat " " (List.map sm_print ops))
       QCheck.Gen.(list_size (40 -- 80) sm_gen))
    sm_run

(* --- Session-history high-water mark ----------------------------------
   A leaf that stops polling must not balloon the master: its pending
   buffer is capped at the high-water mark, after which the session is
   retired and the next poll escalates to a degraded snapshot-diff. *)

let test_history_hwm_bounds_master () =
  let b = build_directory () in
  let m = Master.create ~history_limit:8 b in
  check_bool "limit recorded" true (Master.history_limit m = Some 8);
  let fast = Consumer.create schema (dept_query 7) in
  let slow = Consumer.create schema (dept_query 8) in
  let sync c = match Consumer.sync c m with Ok r -> r | Error e -> failwith e in
  ignore (sync fast);
  ignore (sync slow);
  check_int "both sessions live" 2 (Master.session_count m);
  (* 120 updates inside the slow session's content while only the fast
     consumer keeps polling. *)
  let peak = ref 0 in
  for i = 1 to 120 do
    apply b (Update.add (person (Printf.sprintf "hwm%d" i) ~dept:"8" ()));
    if i mod 5 = 0 then ignore (sync fast);
    let _, per_session_max = Master.pending_stats m in
    peak := max !peak per_session_max
  done;
  check_bool "pending never exceeded the high-water mark" true (!peak <= 8);
  check_int "slow session was retired" 1 (Master.session_count m);
  (* The slow consumer escalates to a degraded snapshot-diff and still
     converges. *)
  let reply = sync slow in
  check_bool "escalated to degraded" true
    (reply.Protocol.kind = Protocol.Degraded);
  check_bool "slow consumer converged" true
    (Dn.Set.equal (Content.current_dns b (dept_query 8)) (Consumer.dns slow));
  check_bool "fast consumer stayed incremental" true
    ((sync fast).Protocol.kind = Protocol.Incremental)

let suite =
  [
    Alcotest.test_case "tree matches star (1000 leaves)" `Slow test_tree_matches_star;
    Alcotest.test_case "root sessions flat in leaves" `Quick
      test_root_sessions_flat_in_leaves;
    Alcotest.test_case "chain lag is depth" `Quick test_chain_lag_is_depth;
    Alcotest.test_case "referral on uncovered subscription" `Quick
      test_referral_on_uncovered_subscription;
    Alcotest.test_case "admitted subscription served at node" `Quick
      test_admitted_subscription_served_at_node;
    Alcotest.test_case "re-parented cookie degrades with retain" `Quick
      test_reparented_cookie_degrades_with_retain;
    Alcotest.test_case "trimmed root history heals through node" `Quick
      test_trimmed_root_history_heals_through_node;
    Alcotest.test_case "killed node re-parents leaves" `Quick
      test_kill_node_reparents_and_converges;
    Alcotest.test_case "history high-water mark bounds master" `Quick
      test_history_hwm_bounds_master;
    QCheck_alcotest.to_alcotest chain_equivalence_test;
    QCheck_alcotest.to_alcotest streaming_materialized_test;
  ]
