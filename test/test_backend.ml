(* Tests for Ldap.Dit, Ldap.Backend, Ldap.Server and Ldap.Network,
   including the Figure 2 distributed-operation scenario. *)
open Ldap

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let entry dn_s attrs = Entry.make (dn dn_s) attrs

let org = entry "o=xyz" [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let person name parent serial =
  entry
    (Printf.sprintf "cn=%s,%s" name parent)
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]);
      ("sn", [ name ]);
      ("serialNumber", [ serial ]);
    ]

let ou name parent =
  entry
    (Printf.sprintf "ou=%s,%s" name parent)
    [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ name ]) ]

let make_backend () =
  let b = Backend.create ~indexed:[ "serialnumber"; "cn" ] schema in
  (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
  let apply op =
    match Backend.apply b op with Ok _ -> () | Error e -> failwith e
  in
  apply (Update.add (ou "research" "o=xyz"));
  apply (Update.add (ou "sales" "o=xyz"));
  apply (Update.add (person "alice" "ou=research,o=xyz" "1001"));
  apply (Update.add (person "bob" "ou=research,o=xyz" "1002"));
  apply (Update.add (person "carol" "ou=sales,o=xyz" "2001"));
  b

let q ?(scope = Scope.Sub) base filter = Query.make ~scope ~base:(dn base) (f filter)

let search_count b query =
  match Backend.search b query with
  | Ok { Backend.entries; _ } -> List.length entries
  | Error _ -> -1

let test_dit_basics () =
  let b = make_backend () in
  check_int "total entries" 6 (Backend.total_entries b);
  check_bool "find existing" true (Backend.find b (dn "cn=alice,ou=research,o=xyz") <> None);
  check_bool "find missing" true (Backend.find b (dn "cn=zoe,o=xyz") = None)

let test_add_validation () =
  let b = make_backend () in
  let dup = person "alice" "ou=research,o=xyz" "1001" in
  check_bool "duplicate add fails" true (Result.is_error (Backend.apply b (Update.add dup)));
  let orphan = person "dave" "ou=missing,o=xyz" "3001" in
  check_bool "orphan add fails" true (Result.is_error (Backend.apply b (Update.add orphan)));
  let outside = person "eve" "o=other" "4001" in
  check_bool "outside context fails" true
    (Result.is_error (Backend.apply b (Update.add outside)));
  let no_oc = Entry.make (dn "cn=frank,o=xyz") [ ("cn", [ "frank" ]) ] in
  check_bool "no objectclass fails" true
    (Result.is_error (Backend.apply b (Update.Add no_oc)))

let test_naming_attr_autofill () =
  let b = make_backend () in
  let e = Entry.make (dn "cn=gina,o=xyz") [ ("objectclass", [ "person" ]); ("sn", [ "g" ]) ] in
  (match Backend.apply b (Update.Add e) with Ok _ -> () | Error e -> failwith e);
  let stored = Option.get (Backend.find b (dn "cn=gina,o=xyz")) in
  check_bool "naming value added" true (Entry.has_value stored "cn" "gina")

let test_delete () =
  let b = make_backend () in
  check_bool "delete non-leaf fails" true
    (Result.is_error (Backend.apply b (Update.delete (dn "ou=research,o=xyz"))));
  (match Backend.apply b (Update.delete (dn "cn=alice,ou=research,o=xyz")) with
  | Ok _ -> ()
  | Error e -> failwith e);
  check_bool "deleted" true (Backend.find b (dn "cn=alice,ou=research,o=xyz") = None);
  check_int "count down" 5 (Backend.total_entries b);
  check_bool "delete missing fails" true
    (Result.is_error (Backend.apply b (Update.delete (dn "cn=alice,ou=research,o=xyz"))))

let test_modify () =
  let b = make_backend () in
  let target = dn "cn=alice,ou=research,o=xyz" in
  (match
     Backend.apply b
       (Update.modify target
          [ Update.replace_values "mail" [ "alice@xyz.com" ];
            Update.add_values "departmentNumber" [ "2406" ] ])
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let stored = Option.get (Backend.find b target) in
  check_bool "mail set" true (Entry.has_value stored "mail" "alice@xyz.com");
  check_bool "dept set" true (Entry.has_value stored "departmentnumber" "2406");
  check_bool "delete absent value fails" true
    (Result.is_error
       (Backend.apply b (Update.modify target [ Update.delete_values "mail" [ "nope@x" ] ])));
  (* Index follows modification. *)
  (match Backend.apply b (Update.modify target [ Update.replace_values "serialNumber" [ "9999" ] ]) with
  | Ok _ -> ()
  | Error e -> failwith e);
  check_int "old serial gone" 0 (search_count b (q "o=xyz" "(serialNumber=1001)"));
  check_int "new serial found" 1 (search_count b (q "o=xyz" "(serialNumber=9999)"))

let test_modify_dn () =
  let b = make_backend () in
  let target = dn "cn=alice,ou=research,o=xyz" in
  let new_rdn = match Dn.rdn_of_string "cn=alicia" with Ok r -> r | Error e -> failwith e in
  (match
     Backend.apply b
       (Update.modify_dn ~new_superior:(dn "ou=sales,o=xyz") target new_rdn)
   with
  | Ok record ->
      check_bool "before present" true (record.Update.before <> None);
      check_bool "after present" true (record.Update.after <> None)
  | Error e -> failwith e);
  check_bool "old gone" true (Backend.find b target = None);
  let moved = Option.get (Backend.find b (dn "cn=alicia,ou=sales,o=xyz")) in
  check_bool "new rdn value" true (Entry.has_value moved "cn" "alicia");
  check_bool "old rdn value deleted" false (Entry.has_value moved "cn" "alice");
  check_int "index moved" 1 (search_count b (q "ou=sales,o=xyz" "(serialNumber=1001)"))

let test_search_scopes () =
  let b = make_backend () in
  check_int "sub all" 6 (search_count b (q "o=xyz" "(objectclass=*)"));
  check_int "one level" 2 (search_count b (q ~scope:Scope.One "o=xyz" "(objectclass=*)"));
  check_int "base" 1 (search_count b (q ~scope:Scope.Base "o=xyz" "(objectclass=*)"));
  check_int "sub persons" 3 (search_count b (q "o=xyz" "(objectclass=inetOrgPerson)"));
  check_int "subtree research" 3 (search_count b (q "ou=research,o=xyz" "(objectclass=*)"));
  check_bool "missing base errors" true
    (match Backend.search b (q "ou=nope,o=xyz" "(objectclass=*)") with
    | Error (Backend.No_such_object _) -> true
    | _ -> false)

let test_search_indexed_vs_scan () =
  let b = make_backend () in
  (* serialNumber is indexed, mail is not: both must agree. *)
  check_int "indexed eq" 1 (search_count b (q "o=xyz" "(serialNumber=1002)"));
  check_int "indexed prefix" 2 (search_count b (q "o=xyz" "(serialNumber=10*)"));
  check_int "and with index" 1
    (search_count b (q "o=xyz" "(&(serialNumber=1002)(objectclass=inetOrgPerson))"));
  check_int "scan filter" 2
    (search_count b (q "o=xyz" "(|(serialNumber=1001)(serialNumber=2001))"));
  check_int "scoped index lookup excludes others" 0
    (search_count b (q "ou=sales,o=xyz" "(serialNumber=1001)"))

let test_attribute_selection () =
  let b = make_backend () in
  let query =
    Query.make ~attrs:(Query.Select [ "cn" ]) ~base:(dn "o=xyz") (f "(serialNumber=1001)")
  in
  match Backend.search b query with
  | Ok { Backend.entries = [ e ]; _ } ->
      check_bool "cn kept" true (Entry.has_attribute e "cn");
      check_bool "serial dropped" false (Entry.has_attribute e "serialnumber")
  | _ -> Alcotest.fail "expected one entry"

let test_count_matching () =
  let b = make_backend () in
  check_int "count" 3 (Backend.count_matching b (q "o=xyz" "(objectclass=inetOrgPerson)"))

let test_log () =
  let b = make_backend () in
  let csn0 = Backend.csn b in
  ignore (Backend.apply b (Update.delete (dn "cn=carol,ou=sales,o=xyz")));
  let records = Backend.log_since b csn0 in
  check_int "one record" 1 (List.length records);
  check_bool "complete" true (Backend.log_complete_since b csn0);
  Backend.trim_log b ~before:(Backend.csn b);
  (* Records up to csn0 are gone, so the log no longer reaches back to
     the beginning — but it still covers (csn0, now]. *)
  check_bool "still covers csn0" true (Backend.log_complete_since b csn0);
  check_bool "incomplete from zero" false (Backend.log_complete_since b Csn.zero);
  check_int "trimmed length" 1 (Backend.log_length b)

let test_log_ring () =
  (* The changelog ring against a reference list: [since], [length],
     [trim] and the floor must agree through growth (wraparound) and
     interleaved trimming. *)
  let log = Changelog.create () in
  let reference = ref [] in  (* newest first *)
  let record i =
    { Update.csn = Csn.of_int i; op = Update.delete (dn "o=xyz"); before = None;
      after = None }
  in
  let check_against_reference i =
    (* Probe a handful of resume points around the current csn. *)
    List.iter
      (fun since ->
        let expect =
          List.filter (fun (r : Update.record) -> Csn.( < ) since r.Update.csn)
            (List.rev !reference)
        in
        let got = Changelog.since log since in
        check_int
          (Printf.sprintf "since %d at %d" (Csn.to_int since) i)
          (List.length expect) (List.length got);
        List.iter2
          (fun (a : Update.record) (b : Update.record) ->
            check_bool "same csn" true (Csn.equal a.Update.csn b.Update.csn))
          expect got)
      [ Csn.zero; Csn.of_int (i / 2); Csn.of_int (max 0 (i - 3)); Csn.of_int i ]
  in
  for i = 1 to 100 do
    Changelog.append log (record i);
    reference := record i :: !reference;
    if i mod 31 = 0 then begin
      (* Drop everything below i - 10. *)
      let before = Csn.of_int (i - 10) in
      Changelog.trim log ~before;
      reference :=
        List.filter (fun (r : Update.record) -> Csn.( <= ) before r.Update.csn) !reference
    end;
    check_int "length" (List.length !reference) (Changelog.length log);
    if i mod 7 = 0 then check_against_reference i
  done;
  check_against_reference 100;
  (* Floor semantics: complete iff nothing above the cursor was trimmed. *)
  check_bool "incomplete from zero" false (Changelog.complete_since log Csn.zero);
  check_bool "complete from floor" true (Changelog.complete_since log (Changelog.floor log));
  (* Trimming below the floor never lowers it. *)
  let floor = Changelog.floor log in
  Changelog.trim log ~before:Csn.zero;
  check_bool "floor monotone" true (Csn.equal floor (Changelog.floor log));
  (* CSNs must be strictly increasing. *)
  check_bool "duplicate csn rejected" true
    (match Changelog.append log (record 100) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Edge cases around the ring's floor: trims that empty the log, trims
   past the head, and a wraparound immediately read back at the floor. *)

let ring_record i =
  { Update.csn = Csn.of_int i; op = Update.delete (dn "o=xyz"); before = None;
    after = None }

let test_log_trim_to_empty () =
  let log = Changelog.create () in
  for i = 1 to 5 do Changelog.append log (ring_record i) done;
  Changelog.trim log ~before:(Csn.of_int 6);
  check_int "emptied" 0 (Changelog.length log);
  check_bool "floor raised to before-1" true
    (Csn.equal (Changelog.floor log) (Csn.of_int 5));
  check_int "since floor empty" 0
    (List.length (Changelog.since log (Changelog.floor log)));
  check_bool "complete from the floor" true
    (Changelog.complete_since log (Csn.of_int 5));
  check_bool "incomplete below the floor" false
    (Changelog.complete_since log (Csn.of_int 4));
  (* Appending resumes normally on the empty ring. *)
  Changelog.append log (ring_record 6);
  check_int "one record" 1 (Changelog.length log);
  check_int "replay from the floor" 1
    (List.length (Changelog.since log (Csn.of_int 5)))

let test_log_trim_past_head () =
  let log = Changelog.create () in
  for i = 1 to 5 do Changelog.append log (ring_record i) done;
  (* Trim far beyond anything appended: everything goes and the floor
     lands at before-1, not at the last record. *)
  Changelog.trim log ~before:(Csn.of_int 100);
  check_int "emptied" 0 (Changelog.length log);
  check_bool "floor at before-1" true
    (Csn.equal (Changelog.floor log) (Csn.of_int 99));
  check_bool "complete from 99" true (Changelog.complete_since log (Csn.of_int 99));
  check_bool "incomplete from 98" false (Changelog.complete_since log (Csn.of_int 98));
  Changelog.append log (ring_record 100);
  match Changelog.since log (Csn.of_int 99) with
  | [ r ] -> check_bool "resumed at 100" true (Csn.equal r.Update.csn (Csn.of_int 100))
  | l -> check_int "one record after resume" 1 (List.length l)

let test_log_wraparound_since_floor () =
  (* Fill the initial 16-slot ring, trim to move the head forward, then
     append enough to wrap physically and read straight back at the
     floor: the seam must be invisible in [since]. *)
  let log = Changelog.create () in
  for i = 1 to 16 do Changelog.append log (ring_record i) done;
  Changelog.trim log ~before:(Csn.of_int 9);
  check_int "eight retained" 8 (Changelog.length log);
  for i = 17 to 24 do Changelog.append log (ring_record i) done;
  check_int "full again" 16 (Changelog.length log);
  check_bool "floor" true (Csn.equal (Changelog.floor log) (Csn.of_int 8));
  let all = Changelog.since log (Changelog.floor log) in
  check_int "all retained records" 16 (List.length all);
  List.iteri
    (fun k (r : Update.record) ->
      check_bool "csn order across the seam" true
        (Csn.equal r.Update.csn (Csn.of_int (9 + k))))
    all;
  check_int "suffix past the seam" 4
    (List.length (Changelog.since log (Csn.of_int 20)));
  check_bool "complete from the floor" true
    (Changelog.complete_since log (Changelog.floor log));
  check_bool "incomplete below" false (Changelog.complete_since log (Csn.of_int 7))

let test_subscribers () =
  let b = make_backend () in
  let seen = ref [] in
  Backend.subscribe b (fun r -> seen := Update.op_kind_name r.Update.op :: !seen);
  ignore (Backend.apply b (Update.delete (dn "cn=carol,ou=sales,o=xyz")));
  ignore (Backend.apply b (Update.add (person "dan" "ou=sales,o=xyz" "2002")));
  Alcotest.(check (list string)) "notifications in order" [ "add"; "delete" ] !seen

let test_many_subscribers_ordered () =
  let b = make_backend () in
  let seen = ref [] in
  for i = 0 to 99 do
    Backend.subscribe b (fun _ -> seen := i :: !seen)
  done;
  ignore (Backend.apply b (Update.delete (dn "cn=carol,ou=sales,o=xyz")));
  Alcotest.(check (list int)) "registration order" (List.init 100 Fun.id) (List.rev !seen)

(* --- Oracle property: search = naive scan ------------------------------
   The indexed fast path, scope handling and referral exclusion must
   agree with a direct evaluation over every entry. *)

let naive_search backend (query : Query.t) =
  Backend.fold_entries backend ~init:[] ~f:(fun acc e ->
      if
        Query.in_scope query (Entry.dn e)
        && Filter.matches schema query.Query.filter e
        && not (Entry.is_referral e)
      then Dn.canonical (Entry.dn e) :: acc
      else acc)
  |> List.sort String.compare

let oracle_backend =
  lazy
    (let b = Backend.create ~indexed:[ "serialnumber"; "departmentnumber" ] schema in
     (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
     let apply op = match Backend.apply b op with Ok _ -> () | Error e -> failwith e in
     apply (Update.add (ou "research" "o=xyz"));
     apply (Update.add (ou "sales" "o=xyz"));
     for i = 0 to 59 do
       let parent = if i mod 2 = 0 then "ou=research,o=xyz" else "ou=sales,o=xyz" in
       let e =
         entry
           (Printf.sprintf "cn=p%02d,%s" i parent)
           [
             ("objectclass", [ "inetOrgPerson" ]);
             ("cn", [ Printf.sprintf "p%02d" i ]);
             ("sn", [ Printf.sprintf "p%02d" i ]);
             ("serialNumber", [ Printf.sprintf "%04d" i ]);
             ("departmentNumber", [ Printf.sprintf "%02d" (i mod 7) ]);
           ]
       in
       apply (Update.Add e)
     done;
     b)

let query_gen =
  let open QCheck.Gen in
  let base =
    oneofl [ "o=xyz"; "ou=research,o=xyz"; "ou=sales,o=xyz"; "cn=p04,ou=research,o=xyz" ]
  in
  let scope = oneofl [ Scope.Base; Scope.One; Scope.Sub ] in
  let value = map (fun i -> Printf.sprintf "%04d" i) (0 -- 70) in
  let dept = map (fun i -> Printf.sprintf "%02d" i) (0 -- 8) in
  let filter =
    oneof
      [
        map (fun v -> Printf.sprintf "(serialNumber=%s)" v) value;
        map (fun v -> Printf.sprintf "(serialNumber=%s*)" (String.sub v 0 3)) value;
        map (fun d -> Printf.sprintf "(departmentNumber=%s)" d) dept;
        map2 (fun v d -> Printf.sprintf "(&(serialNumber>=%s)(departmentNumber=%s))" v d)
          value dept;
        map (fun d -> Printf.sprintf "(|(departmentNumber=%s)(serialNumber=0003))" d) dept;
        map (fun d -> Printf.sprintf "(!(departmentNumber=%s))" d) dept;
        return "(objectclass=inetOrgPerson)";
      ]
  in
  map3
    (fun base scope filter_s ->
      Query.make ~scope ~base:(Dn.of_string_exn base) (Filter.of_string_exn filter_s))
    base scope filter

let prop_search_matches_naive =
  QCheck.Test.make ~name:"backend: search equals naive scan" ~count:500
    (QCheck.make ~print:Query.to_string query_gen) (fun query ->
      let b = Lazy.force oracle_backend in
      match Backend.search b query with
      | Error _ -> naive_search b query = []
      | Ok { Backend.entries; _ } ->
          let got =
            List.sort String.compare
              (List.map (fun e -> Dn.canonical (Entry.dn e)) entries)
          in
          got = naive_search b query)

(* --- Figure 2: distributed operation processing ---------------------- *)

let figure2_network () =
  (* hostA: o=xyz with referral objects to hostB and hostC.
     hostB: ou=research,c=us,o=xyz.  hostC: c=in,o=xyz. *)
  let net = Network.create () in
  let backend_a = Backend.create schema in
  (match Backend.add_context backend_a org with Ok () -> () | Error e -> failwith e);
  let apply_a op =
    match Backend.apply backend_a op with Ok _ -> () | Error e -> failwith e
  in
  apply_a (Update.add (entry "c=us,o=xyz" [ ("objectclass", [ "country" ]); ("c", [ "us" ]) ]));
  apply_a (Update.add (person "fred jones" "o=xyz" "0001"));
  apply_a
    (Update.add
       (entry "ou=research,c=us,o=xyz"
          [
            ("objectclass", [ "referral" ]);
            ("ref", [ Referral.make ~host:"hostB" ~dn:(dn "ou=research,c=us,o=xyz") () ]);
          ]));
  apply_a
    (Update.add
       (entry "c=in,o=xyz"
          [
            ("objectclass", [ "referral" ]);
            ("ref", [ Referral.make ~host:"hostC" ~dn:(dn "c=in,o=xyz") () ]);
          ]));
  let backend_b = Backend.create schema in
  (match
     Backend.add_context backend_b
       (entry "ou=research,c=us,o=xyz" [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ "research" ]) ])
   with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Backend.apply backend_b (Update.add (person "john doe" "ou=research,c=us,o=xyz" "0456")) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let backend_c = Backend.create schema in
  (match
     Backend.add_context backend_c
       (entry "c=in,o=xyz" [ ("objectclass", [ "country" ]); ("c", [ "in" ]) ])
   with
  | Ok () -> ()
  | Error e -> failwith e);
  (match Backend.apply backend_c (Update.add (person "asha" "c=in,o=xyz" "0789")) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let url_a = Referral.make ~host:"hostA" () in
  Network.add_server net (Server.create ~name:"hostA" backend_a);
  Network.add_server net (Server.create ~name:"hostB" ~default_referral:url_a backend_b);
  Network.add_server net (Server.create ~name:"hostC" ~default_referral:url_a backend_c);
  net

let test_figure2_round_trips () =
  let net = figure2_network () in
  Network.reset_stats net;
  (* Client asks hostB for a subtree search based at o=xyz. *)
  match Network.search net ~from:"hostB" (q "o=xyz" "(objectclass=*)") with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      (* All entries from the three servers, minus referral objects. *)
      check_int "entries" 7 (List.length entries);
      (* Four round trips: hostB (default referral), hostA (entries +
         2 references), hostB and hostC with modified bases. *)
      check_int "round trips" 4 (Network.stats net).Network.round_trips

let test_figure2_no_chase () =
  let net = figure2_network () in
  match Network.search_no_chase net ~from:"hostB" (q "o=xyz" "(objectclass=*)") with
  | Server.Referral [ url ] ->
      check_bool "superior referral" true
        ((Referral.parse_exn url).Referral.host = "hostA")
  | _ -> Alcotest.fail "expected default referral"

let test_base_referral () =
  let net = figure2_network () in
  (* Searching hostA below the referral object for hostB. *)
  match
    Network.search_no_chase net ~from:"hostA"
      (q "cn=john doe,ou=research,c=us,o=xyz" "(objectclass=*)")
  with
  | Server.Referral [ url ] ->
      check_bool "subordinate referral" true
        ((Referral.parse_exn url).Referral.host = "hostB")
  | _ -> Alcotest.fail "expected base referral"

let suite =
  [
    Alcotest.test_case "dit basics" `Quick test_dit_basics;
    Alcotest.test_case "add validation" `Quick test_add_validation;
    Alcotest.test_case "naming attr autofill" `Quick test_naming_attr_autofill;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "modify" `Quick test_modify;
    Alcotest.test_case "modify dn" `Quick test_modify_dn;
    Alcotest.test_case "search scopes" `Quick test_search_scopes;
    Alcotest.test_case "indexed vs scan" `Quick test_search_indexed_vs_scan;
    Alcotest.test_case "attribute selection" `Quick test_attribute_selection;
    Alcotest.test_case "count matching" `Quick test_count_matching;
    Alcotest.test_case "update log" `Quick test_log;
    Alcotest.test_case "changelog ring" `Quick test_log_ring;
    Alcotest.test_case "changelog trim to empty" `Quick test_log_trim_to_empty;
    Alcotest.test_case "changelog trim past head" `Quick test_log_trim_past_head;
    Alcotest.test_case "changelog wraparound since floor" `Quick
      test_log_wraparound_since_floor;
    Alcotest.test_case "subscribers" `Quick test_subscribers;
    Alcotest.test_case "many subscribers ordered" `Quick test_many_subscribers_ordered;
    QCheck_alcotest.to_alcotest prop_search_matches_naive;
    Alcotest.test_case "figure 2 round trips" `Quick test_figure2_round_trips;
    Alcotest.test_case "figure 2 no chase" `Quick test_figure2_no_chase;
    Alcotest.test_case "base referral" `Quick test_base_referral;
  ]
