(* Tests for the adaptive subsystem: decayed interest tracking, delta
   transition planning/execution, the drift-triggered controller and
   the master's bounded persist-push backpressure.

   The centerpiece is a QCheck property: executing a delta transition
   plan (kept / rescoped / seeded / cold installs) leaves every target
   query's content identical to what a cold re-subscribe would hold,
   under random update interleavings and across all three history
   strategies. *)
open Ldap
module Resync = Ldap_resync
module FR = Ldap_replication.Filter_replica
module A = Ldap_adaptive
module S = Ldap_selection

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let org =
  Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let person name ?(dept = "100") () =
  Entry.make
    (dn (Printf.sprintf "cn=%s,o=xyz" name))
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]);
      ("sn", [ name ]);
      ("departmentNumber", [ dept ]);
    ]

let make_backend () =
  let b = Backend.create ~indexed:[ "departmentnumber" ] schema in
  (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
  b

let apply b op = match Backend.apply b op with Ok _ -> () | Error e -> failwith e

let dept_query dept =
  Query.make ~base:(dn "o=xyz") (f (Printf.sprintf "(departmentNumber=%s)" dept))

let prefix_query p =
  Query.make ~base:(dn "o=xyz") (f (Printf.sprintf "(departmentNumber=%s*)" p))

(* --- Interest ----------------------------------------------------------- *)

let test_interest_decay () =
  let t = A.Interest.create ~half_life:4 () in
  let q = dept_query "7" in
  A.Interest.observe t q;
  check_bool "fresh score is the weight" true
    (abs_float (A.Interest.score t q -. 1.0) < 1e-9);
  for _ = 1 to 4 do
    A.Interest.touch t
  done;
  check_bool "halved after one half-life" true
    (abs_float (A.Interest.score t q -. 0.5) < 1e-9);
  for _ = 1 to 4 do
    A.Interest.touch t
  done;
  check_bool "quartered after two" true
    (abs_float (A.Interest.score t q -. 0.25) < 1e-9)

let test_interest_ranked_and_prune () =
  let t = A.Interest.create ~half_life:100 () in
  let a = dept_query "7" and b = dept_query "8" in
  A.Interest.observe t a;
  A.Interest.observe t b;
  A.Interest.observe t b;
  (match A.Interest.ranked t with
  | (first, _) :: (second, _) :: [] ->
      check_bool "hotter first" true (Query.equal first b);
      check_bool "then colder" true (Query.equal second a)
  | _ -> Alcotest.fail "expected two ranked entries");
  (* Decay [a] below the floor; [b] survives the prune. *)
  let pruned = A.Interest.prune t ~below:1.5 in
  check_int "one pruned" 1 pruned;
  check_int "one left" 1 (A.Interest.count t);
  check_bool "survivor is b" true (A.Interest.score t b > 1.5)

let test_interest_rejects_bad_half_life () =
  check_bool "half_life 0 rejected" true
    (try
       ignore (A.Interest.create ~half_life:0 ());
       false
     with Invalid_argument _ -> true)

(* --- Transition planning ------------------------------------------------ *)

let test_plan_classification () =
  let pref7 = prefix_query "7" and d71 = dept_query "71" in
  let d81 = dept_query "81" and pref8 = prefix_query "8" in
  let current = [ pref7; d81 ] in
  let target = [ pref7; d71; pref8 ] in
  let plan = A.Transition.plan schema ~current ~target in
  let step_for q =
    List.find (fun s -> Query.equal (A.Transition.step_query s) q)
      plan.A.Transition.steps
  in
  (match step_for pref7 with
  | A.Transition.Keep _ -> ()
  | _ -> Alcotest.fail "stored query should be kept");
  (match step_for d71 with
  | A.Transition.Rescope { donor; _ } ->
      check_bool "donor is the containing prefix" true (Query.equal donor pref7)
  | _ -> Alcotest.fail "contained query should rescope");
  (match step_for pref8 with
  | A.Transition.Seed { donors; _ } ->
      check_bool "overlapping dept is a donor" true
        (List.exists (Query.equal d81) donors)
  | _ -> Alcotest.fail "overlapping query should seed");
  check_int "dropped stored query is removed" 1
    (List.length plan.A.Transition.removes);
  check_bool "removed is d81" true
    (Query.equal (List.hd plan.A.Transition.removes) d81)

let test_plan_cold_without_donors () =
  let plan =
    A.Transition.plan schema ~current:[] ~target:[ dept_query "71" ]
  in
  match plan.A.Transition.steps with
  | [ A.Transition.Fetch _ ] -> ()
  | _ -> Alcotest.fail "no stored set means a cold fetch"

(* --- Delta installs vs cold re-subscribe (property) --------------------- *)

let pool_depts = [| "71"; "72"; "81"; "82" |]

let pool_queries =
  [|
    dept_query "71"; dept_query "72"; dept_query "81"; dept_query "82";
    prefix_query "7"; prefix_query "8";
  |]

let queries_of_mask mask =
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0)
    (Array.to_list pool_queries)

type aop = A_add of int * int | A_del of int | A_move of int * int

let aop_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun i d -> A_add (i, d)) (0 -- 15) (0 -- 3));
        (2, map (fun i -> A_del i) (0 -- 15));
        (3, map2 (fun i d -> A_move (i, d)) (0 -- 15) (0 -- 3));
      ])

let print_aop = function
  | A_add (i, d) -> Printf.sprintf "add(%d,%s)" i pool_depts.(d)
  | A_del i -> Printf.sprintf "del(%d)" i
  | A_move (i, d) -> Printf.sprintf "move(%d,%s)" i pool_depts.(d)

let run_aop b = function
  | A_add (i, d) ->
      ignore
        (Backend.apply b
           (Update.add (person (Printf.sprintf "p%d" i) ~dept:pool_depts.(d) ())))
  | A_del i ->
      ignore (Backend.apply b (Update.delete (dn (Printf.sprintf "cn=p%d,o=xyz" i))))
  | A_move (i, d) ->
      ignore
        (Backend.apply b
           (Update.modify
              (dn (Printf.sprintf "cn=p%d,o=xyz" i))
              [ Update.replace_values "departmentNumber" [ pool_depts.(d) ] ]))

let content_equal consumer b q =
  let expected =
    List.sort
      (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b))
      (Resync.Content.current b q)
  in
  let actual =
    List.sort
      (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b))
      (Resync.Consumer.entries consumer)
  in
  List.length expected = List.length actual
  && List.for_all2 Entry.equal expected actual

(* Install a random current set cold, churn, transition to a random
   target set through the delta planner, churn again and poll: every
   target query's consumer must hold exactly what a fresh subscription
   would — the master's current content for the query. *)
let run_transition_sim strategy (mask1, ops1, mask2, ops2) =
  let b = make_backend () in
  let master = Resync.Master.create ~strategy b in
  let replica = FR.create master in
  List.iter
    (fun q ->
      match FR.install_filter replica q with
      | Ok () -> ()
      | Error e -> failwith e)
    (queries_of_mask mask1);
  List.iter (run_aop b) ops1;
  FR.sync replica;
  let target = queries_of_mask mask2 in
  let plan =
    A.Transition.plan schema ~current:(FR.stored_filters replica) ~target
  in
  let report = A.Transition.apply replica plan in
  if report.A.Transition.failed > 0 then failwith "failed installs";
  List.iter (run_aop b) ops2;
  FR.sync replica;
  List.length (FR.stored_filters replica) = List.length target
  && List.for_all
       (fun q ->
         match FR.consumer_for replica q with
         | Some c -> content_equal c b q
         | None -> false)
       target

let transition_case strategy name count =
  QCheck.Test.make ~name ~count
    (QCheck.make
       ~print:(fun (m1, o1, m2, o2) ->
         Printf.sprintf "cur=%x [%s] tgt=%x [%s]" m1
           (String.concat ";" (List.map print_aop o1))
           m2
           (String.concat ";" (List.map print_aop o2)))
       QCheck.Gen.(
         quad (0 -- 63)
           (list_size (0 -- 20) aop_gen)
           (0 -- 63)
           (list_size (0 -- 20) aop_gen)))
    (run_transition_sim strategy)

let prop_delta_session_history =
  transition_case Resync.Master.Session_history
    "adaptive: delta transition ≡ cold re-subscribe (session history)" 150

let prop_delta_changelog =
  transition_case Resync.Master.Changelog
    "adaptive: delta transition ≡ cold re-subscribe (changelog)" 100

let prop_delta_tombstone =
  transition_case Resync.Master.Tombstone
    "adaptive: delta transition ≡ cold re-subscribe (tombstone)" 100

(* --- Rescope attribute guard -------------------------------------------- *)

let test_rescope_narrow_donor_goes_cold () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"71" ()));
  apply b (Update.add (person "b" ~dept:"72" ()));
  let replica = FR.create (Resync.Master.create b) in
  (* The donor only replicates cn: it cannot seed a target that needs
     full entries, so the install must degrade to a cold fetch instead
     of baking missing-attribute images into retained content. *)
  let donor =
    Query.make ~base:(dn "o=xyz")
      ~attrs:(Query.Select [ "cn" ])
      (f "(departmentNumber=7*)")
  in
  (match FR.install_filter replica donor with
  | Ok () -> ()
  | Error e -> failwith e);
  let narrow = dept_query "71" in
  (match FR.install_filter_rescoped replica narrow ~donor with
  | Ok FR.Cold -> ()
  | Ok _ -> Alcotest.fail "narrow-attrs donor must not rescope"
  | Error e -> failwith e);
  match FR.consumer_for replica narrow with
  | Some c -> check_bool "cold content complete" true (content_equal c b narrow)
  | None -> Alcotest.fail "target not installed"

let test_rescope_from_covering_donor () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"71" ()));
  apply b (Update.add (person "b" ~dept:"72" ()));
  let replica = FR.create (Resync.Master.create b) in
  let donor = prefix_query "7" in
  (match FR.install_filter replica donor with
  | Ok () -> ()
  | Error e -> failwith e);
  (* Change one member after the donor's sync: the rescoped install
     resumes degraded from the donor's CSN and still converges. *)
  apply b
    (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "mail" [ "a@x" ] ]);
  let narrow = dept_query "71" in
  (match FR.install_filter_rescoped replica narrow ~donor with
  | Ok FR.Rescoped -> ()
  | Ok _ -> Alcotest.fail "covering donor should rescope"
  | Error e -> failwith e);
  match FR.consumer_for replica narrow with
  | Some c -> check_bool "rescoped content complete" true (content_equal c b narrow)
  | None -> Alcotest.fail "target not installed"

(* --- Controller edge cases ---------------------------------------------- *)

let quiet_config =
  {
    A.Controller.default_config with
    A.Controller.revolution_interval = 0;
    drift_check_interval = 0;
    min_score = 0.5;
    size_budget = 100;
  }

let test_controller_zero_candidates () =
  let b = make_backend () in
  let ctl = A.Controller.create quiet_config (FR.create (Resync.Master.create b)) in
  check_bool "nothing to adapt to" true (A.Controller.force_adapt ctl = None);
  check_int "no adaptations" 0 (A.Controller.adaptation_count ctl)

let test_controller_budget_below_smallest () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"71" ()));
  apply b (Update.add (person "b" ~dept:"71" ()));
  let replica = FR.create (Resync.Master.create b) in
  let ctl =
    A.Controller.create
      { quiet_config with A.Controller.size_budget = 1 }
      replica
  in
  let q = dept_query "71" in
  A.Controller.observe ctl q;
  A.Controller.observe ctl q;
  (* The only viable candidate estimates at 2 entries against a budget
     of 1: selection must pick nothing and the no-op must not count as
     an adaptation. *)
  check_bool "no adaptation fits" true (A.Controller.force_adapt ctl = None);
  check_int "nothing stored" 0 (List.length (FR.stored_filters replica))

let test_controller_sizes_refreshed () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"71" ()));
  let replica = FR.create (Resync.Master.create b) in
  let ctl =
    A.Controller.create
      { quiet_config with A.Controller.size_budget = 2 }
      replica
  in
  let q = dept_query "71" in
  A.Controller.observe ctl q;
  A.Controller.observe ctl q;
  (match A.Controller.force_adapt ctl with
  | Some a ->
      check_bool "drifted in" true
        (List.exists (Query.equal q) a.A.Controller.target)
  | None -> Alcotest.fail "expected an adaptation");
  (* The department grows past the budget; a re-selection asking the
     estimator fresh must now drop the filter rather than keep serving
     a stale 1-entry price. *)
  for i = 0 to 4 do
    apply b (Update.add (person (Printf.sprintf "g%d" i) ~dept:"71" ()))
  done;
  (match A.Controller.force_adapt ctl with
  | Some a -> check_int "target emptied" 0 (List.length a.A.Controller.target)
  | None -> Alcotest.fail "expected a shrinking adaptation");
  check_int "filter dropped" 0 (List.length (FR.stored_filters replica))

let test_controller_drift_trigger () =
  let b = make_backend () in
  for i = 0 to 2 do
    apply b (Update.add (person (Printf.sprintf "a%d" i) ~dept:"71" ()))
  done;
  for i = 0 to 2 do
    apply b (Update.add (person (Printf.sprintf "b%d" i) ~dept:"81" ()))
  done;
  let replica = FR.create (Resync.Master.create b) in
  let ctl =
    A.Controller.create
      {
        quiet_config with
        A.Controller.drift_check_interval = 5;
        drift_ratio = 1.5;
        size_budget = 100;
      }
      replica
  in
  let q71 = dept_query "71" and q81 = dept_query "81" in
  for _ = 1 to 10 do
    A.Controller.observe ctl q71
  done;
  check_bool "first drift adaptation installed the hot dept" true
    (List.exists (Query.equal q71) (FR.stored_filters replica));
  (* The workload flips: the uncovered candidate's score must trip the
     drift test well before any periodic revolution (disabled here). *)
  for _ = 1 to 30 do
    A.Controller.observe ctl q81
  done;
  check_bool "flip admitted" true
    (List.exists (Query.equal q81) (FR.stored_filters replica));
  let triggers =
    List.map (fun a -> a.A.Controller.trigger) (A.Controller.adaptations ctl)
  in
  check_bool "ran at all" true (triggers <> []);
  check_bool "all drift-triggered" true
    (List.for_all (fun t -> t = A.Controller.Drift) triggers);
  check_int "no failed installs" 0 (A.Controller.totals ctl).A.Transition.failed

(* --- Persist backpressure ----------------------------------------------- *)

let persist_fixture ~limit =
  let b = make_backend () in
  for i = 0 to 2 do
    apply b (Update.add (person (Printf.sprintf "p%d" i) ~dept:"71" ()))
  done;
  let master = Resync.Master.create b in
  Resync.Master.set_persist_queue_limit master (Some limit);
  let transport = Resync.Transport.create (Network.create ()) in
  Resync.Transport.add_master transport ~name:"m" master;
  let consumer = Resync.Consumer.create schema (dept_query "71") in
  (match
     Resync.Consumer.connect_persist consumer transport ~host:"m" ~from:"leaf"
   with
  | Ok _ -> ()
  | Error e -> failwith (Resync.Consumer.sync_error_to_string e));
  (b, master, transport, consumer)

let test_backpressure_parks_and_drains () =
  let b, master, _transport, consumer = persist_fixture ~limit:8 in
  Resync.Consumer.pause_connection consumer;
  for i = 0 to 2 do
    apply b
      (Update.modify
         (dn (Printf.sprintf "cn=p%d,o=xyz" i))
         [ Update.replace_values "mail" [ Printf.sprintf "p%d@x" i ] ])
  done;
  let total, biggest = Resync.Master.push_queue_stats master in
  check_int "all parked" 3 total;
  check_int "one session holds them" 3 biggest;
  check_int "no overflow within bound" 0 (Resync.Master.push_overflows master);
  Resync.Consumer.resume_connection consumer;
  Resync.Master.flush_pushes master;
  check_int "queue drained" 0 (fst (Resync.Master.push_queue_stats master));
  check_bool "connection survived" true (Resync.Consumer.persist_alive consumer);
  check_bool "content caught up" true (content_equal consumer b (dept_query "71"))

let test_backpressure_overflow_escalates () =
  let b, master, transport, consumer = persist_fixture ~limit:2 in
  Resync.Consumer.pause_connection consumer;
  for i = 0 to 5 do
    apply b
      (Update.modify (dn "cn=p0,o=xyz")
         [ Update.replace_values "mail" [ Printf.sprintf "v%d@x" i ] ])
  done;
  check_int "session retired at the bound" 1 (Resync.Master.push_overflows master);
  check_int "queue freed on retirement" 0
    (fst (Resync.Master.push_queue_stats master));
  check_bool "peak stayed O(bound)" true (Resync.Master.push_queue_peak master <= 3);
  Resync.Consumer.resume_connection consumer;
  Resync.Master.flush_pushes master;
  check_bool "consumer noticed the cut" true
    (not (Resync.Consumer.persist_alive consumer));
  (match
     Resync.Consumer.ensure_persist consumer transport ~host:"m" ~from:"leaf"
   with
  | Ok (Some outcome) ->
      check_bool "reconnect resynced degraded" true outcome.Resync.Consumer.resynced
  | Ok None -> Alcotest.fail "expected a reconnection"
  | Error e -> failwith (Resync.Consumer.sync_error_to_string e));
  check_bool "content converged after escalation" true
    (content_equal consumer b (dept_query "71"))

let suite =
  [
    Alcotest.test_case "interest decay" `Quick test_interest_decay;
    Alcotest.test_case "interest ranked+prune" `Quick test_interest_ranked_and_prune;
    Alcotest.test_case "interest bad half-life" `Quick
      test_interest_rejects_bad_half_life;
    Alcotest.test_case "plan classification" `Quick test_plan_classification;
    Alcotest.test_case "plan cold without donors" `Quick
      test_plan_cold_without_donors;
    QCheck_alcotest.to_alcotest prop_delta_session_history;
    QCheck_alcotest.to_alcotest prop_delta_changelog;
    QCheck_alcotest.to_alcotest prop_delta_tombstone;
    Alcotest.test_case "rescope narrow donor goes cold" `Quick
      test_rescope_narrow_donor_goes_cold;
    Alcotest.test_case "rescope from covering donor" `Quick
      test_rescope_from_covering_donor;
    Alcotest.test_case "controller zero candidates" `Quick
      test_controller_zero_candidates;
    Alcotest.test_case "controller budget too small" `Quick
      test_controller_budget_below_smallest;
    Alcotest.test_case "controller refreshes sizes" `Quick
      test_controller_sizes_refreshed;
    Alcotest.test_case "controller drift trigger" `Quick
      test_controller_drift_trigger;
    Alcotest.test_case "backpressure parks+drains" `Quick
      test_backpressure_parks_and_drains;
    Alcotest.test_case "backpressure overflow escalates" `Quick
      test_backpressure_overflow_escalates;
  ]
