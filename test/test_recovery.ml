(* Crash/restart recovery across the stack: backend snapshot+WAL
   round trips, a restarted master that still recognizes its cookies,
   the consumer's cookie+content atomicity boundary (every WAL prefix
   recovers to a state one poll away from convergence), observational
   equivalence of interrupted and uninterrupted runs under all three
   history strategies, and topology-level crash/restart. *)
open Ldap
open Ldap_resync
module Store = Ldap_store
module R = Ldap_replication
module T = Ldap_topology

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let org = Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let person name ?(dept = "7") () =
  Entry.make
    (dn (Printf.sprintf "cn=%s,o=xyz" name))
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]);
      ("sn", [ name ]);
      ("departmentNumber", [ dept ]);
    ]

let make_backend () =
  let b = Backend.create ~indexed:[ "departmentnumber" ] schema in
  (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
  b

let apply b op = match Backend.apply b op with Ok _ -> () | Error e -> failwith e
let must = function Ok v -> v | Error e -> failwith e

let dept_query d =
  Query.make ~base:(dn "o=xyz") (f (Printf.sprintf "(departmentNumber=%s)" d))

let canon entries =
  List.sort (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b)) entries

let entry_sets_equal consumer backend query =
  let expected = canon (Content.current backend query) in
  let actual = canon (Consumer.entries consumer) in
  List.length expected = List.length actual
  && List.for_all2 Entry.equal expected actual

let poll consumer master =
  match Consumer.sync consumer master with
  | Ok reply -> reply
  | Error e -> failwith e

(* --- Backend recovery ------------------------------------------------- *)

let test_backend_recovery () =
  let b = make_backend () in
  let m = Store.Medium.memory () in
  let bs = Store.Backend_store.attach b (Store.Store.create m ~name:"backend") in
  apply b (Update.add (person "alice" ()));
  apply b (Update.add (person "bob" ~dept:"8" ()));
  Store.Backend_store.checkpoint bs;
  apply b (Update.add (person "carol" ()));
  apply b
    (Update.modify (dn "cn=alice,o=xyz")
       [ Update.replace_values "departmentNumber" [ "9" ] ]);
  apply b (Update.delete (dn "cn=bob,o=xyz"));
  Store.Medium.crash m;
  let b2, recovery =
    must
      (Store.Backend_store.recover ~indexed:[ "departmentnumber" ] schema
         (Store.Store.create m ~name:"backend"))
  in
  check_int "post-checkpoint commits replayed" 3
    (List.length recovery.Store.Store.records);
  check_bool "snapshot present" true (recovery.Store.Store.snapshot <> None);
  check_int "entry count survives" (Backend.total_entries b)
    (Backend.total_entries b2);
  check_bool "CSN survives" true (Csn.equal (Backend.csn b) (Backend.csn b2));
  List.iter
    (fun d ->
      let q = dept_query d in
      let expected = canon (Content.current b q) in
      let actual = canon (Content.current b2 q) in
      check_bool ("search equal in dept " ^ d) true
        (List.length expected = List.length actual
        && List.for_all2 Entry.equal expected actual))
    [ "7"; "8"; "9" ]

(* --- Master recovery -------------------------------------------------- *)

let test_master_recovery_keeps_sessions () =
  let b = make_backend () in
  apply b (Update.add (person "alice" ()));
  let master = Master.create b in
  let m = Store.Medium.memory () in
  Master.attach_store master (Store.Store.create m ~name:"master");
  let consumer = Consumer.create schema (dept_query "7") in
  ignore (poll consumer master);
  apply b (Update.add (person "dave" ()));
  ignore (poll consumer master);
  apply b (Update.add (person "erin" ()));
  Store.Medium.crash m;
  let master2, _ =
    must (Master.recover b (Store.Store.create m ~name:"master"))
  in
  (* The restarted master still recognizes the cookie it handed out:
     the next poll replays incrementally instead of resyncing. *)
  let reply = poll consumer master2 in
  check_bool "incremental resume after master restart" true
    (reply.Protocol.kind = Protocol.Incremental);
  check_bool "consumer converged" true (entry_sets_equal consumer b (dept_query "7"))

let test_master_cold_cookie_degrades () =
  (* Without durable session state the same restart forces a resync —
     the contrast that motivates journaling the session table. *)
  let b = make_backend () in
  apply b (Update.add (person "alice" ()));
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  ignore (poll consumer master);
  apply b (Update.add (person "dave" ()));
  let master2 = Master.create b in
  let reply = poll consumer master2 in
  check_bool "unknown cookie cannot resume incrementally" true
    (reply.Protocol.kind <> Protocol.Incremental);
  check_bool "still converges" true (entry_sets_equal consumer b (dept_query "7"))

(* --- Consumer atomicity: every WAL prefix is consistent --------------- *)

let test_consumer_every_prefix_consistent () =
  let b = make_backend () in
  apply b (Update.add (person "alice" ()));
  let master = Master.create b in
  let q = dept_query "7" in
  let consumer = Consumer.create schema q in
  let m = Store.Medium.memory () in
  Consumer.attach_store consumer (Store.Store.create m ~name:"c");
  ignore (poll consumer master);
  apply b (Update.add (person "dave" ()));
  apply b (Update.delete (dn "cn=alice,o=xyz"));
  ignore (poll consumer master);
  apply b (Update.add (person "erin" ()));
  apply b
    (Update.modify (dn "cn=dave,o=xyz")
       [ Update.replace_values "departmentNumber" [ "8" ] ]);
  ignore (poll consumer master);
  let wal = Option.get (Store.Medium.read m ~name:"c.wal") in
  (* Cookie and content travel in one WAL record, so any byte-prefix
     of the journal — any crash point — recovers to a state the master
     can bring to convergence in a single poll.  A cookie journaled
     ahead of its content would make the resumed session skip those
     actions forever. *)
  for cut = 0 to String.length wal do
    let m2 = Store.Medium.memory () in
    Store.Medium.append m2 ~name:"c.wal" (String.sub wal 0 cut);
    Store.Medium.sync m2 ~name:"c.wal";
    let recovered, _ =
      must (Consumer.recover schema q (Store.Store.create m2 ~name:"c"))
    in
    ignore (poll recovered master);
    if not (entry_sets_equal recovered b q) then
      Alcotest.failf "prefix of %d bytes did not reconverge" cut
  done

(* --- Interrupted ≡ uninterrupted, all three strategies ----------------- *)

let strategy_name = function
  | Master.Session_history -> "session history"
  | Master.Changelog -> "changelog"
  | Master.Tombstone -> "tombstone"

let phase1 b =
  apply b (Update.add (person "dave" ()));
  apply b (Update.delete (dn "cn=alice,o=xyz"));
  apply b (Update.add (person "erin" ~dept:"8" ()))

let phase2 b =
  apply b (Update.add (person "fred" ()));
  apply b
    (Update.modify (dn "cn=erin,o=xyz")
       [ Update.replace_values "departmentNumber" [ "7" ] ]);
  apply b (Update.delete (dn "cn=dave,o=xyz"))

let run_strategy strategy ~interrupt =
  let b = make_backend () in
  apply b (Update.add (person "alice" ()));
  let master = Master.create ~strategy b in
  let q = dept_query "7" in
  let consumer = Consumer.create schema q in
  let m = Store.Medium.memory () in
  Consumer.attach_store consumer (Store.Store.create m ~name:"c");
  ignore (poll consumer master);
  phase1 b;
  ignore (poll consumer master);
  let consumer =
    if interrupt then begin
      (* Crash after the second poll: recovery resumes from the
         durable cookie, not from scratch. *)
      Store.Medium.crash m;
      Consumer.detach_store consumer;
      let recovered, recovery =
        must (Consumer.recover schema q (Store.Store.create m ~name:"c"))
      in
      check_bool
        (strategy_name strategy ^ ": journal replayed on recovery")
        true
        (recovery.Store.Store.records <> []);
      recovered
    end
    else consumer
  in
  phase2 b;
  ignore (poll consumer master);
  check_bool (strategy_name strategy ^ ": converged") true
    (entry_sets_equal consumer b q);
  canon (Consumer.entries consumer)

let test_interrupted_equals_uninterrupted () =
  List.iter
    (fun strategy ->
      let plain = run_strategy strategy ~interrupt:false in
      let resumed = run_strategy strategy ~interrupt:true in
      check_bool
        (strategy_name strategy ^ ": interrupted run observationally equal")
        true
        (List.length plain = List.length resumed
        && List.for_all2 Entry.equal plain resumed))
    [ Master.Session_history; Master.Changelog; Master.Tombstone ]

(* --- Snapshot/replay ≡ in-memory (property) ---------------------------- *)

let ops_arb =
  (* (op code, person index, checkpoint after?) per step. *)
  QCheck.(list_of_size (Gen.int_range 1 12) (triple (int_bound 3) (int_bound 5) bool))

let prop_recovered_equals_live =
  QCheck.Test.make ~count:60
    ~name:"recovery: snapshot+replay equals in-memory consumer" ops_arb
    (fun steps ->
      let b = make_backend () in
      apply b (Update.add (person "p0" ()));
      let master = Master.create b in
      let q = dept_query "7" in
      let live = Consumer.create schema q in
      let journaled = Consumer.create schema q in
      let m = Store.Medium.memory () in
      Consumer.attach_store journaled (Store.Store.create m ~name:"c");
      ignore (poll live master);
      ignore (poll journaled master);
      List.iter
        (fun (code, i, ckpt) ->
          let name = Printf.sprintf "p%d" i in
          let target = dn (Printf.sprintf "cn=%s,o=xyz" name) in
          (match code with
          | 0 -> ignore (Backend.apply b (Update.add (person name ())))
          | 1 -> ignore (Backend.apply b (Update.delete target))
          | 2 ->
              ignore
                (Backend.apply b
                   (Update.modify target
                      [ Update.replace_values "departmentNumber" [ "8" ] ]))
          | _ ->
              ignore
                (Backend.apply b
                   (Update.modify target
                      [ Update.replace_values "departmentNumber" [ "7" ] ])));
          ignore (poll live master);
          ignore (poll journaled master);
          if ckpt then Consumer.checkpoint journaled)
        steps;
      Store.Medium.crash m;
      Consumer.detach_store journaled;
      let recovered, _ =
        must (Consumer.recover schema q (Store.Store.create m ~name:"c"))
      in
      let csn_of c =
        match c with
        | None -> None
        | Some cookie -> Option.map snd (Master.parse_cookie cookie)
      in
      let a = canon (Consumer.entries recovered) in
      let b = canon (Consumer.entries live) in
      (* Session ids differ (two sessions at the same master), so the
         cookies agree on the acknowledged CSN, not byte-for-byte. *)
      csn_of (Consumer.cookie recovered) = csn_of (Consumer.cookie live)
      && List.length a = List.length b
      && List.for_all2 Entry.equal a b)

(* --- Topology crash/restart ------------------------------------------- *)

let build_directory () =
  let b = make_backend () in
  for d = 1 to 4 do
    for i = 1 to 3 do
      apply b
        (Update.add
           (person (Printf.sprintf "p%d_%d" d i) ~dept:(string_of_int d) ()))
    done
  done;
  b

let build_star () =
  let b = build_directory () in
  let leaf_queries = List.init 4 (fun i -> dept_query (string_of_int (i + 1))) in
  (b, must (T.Topology.build ~shape:T.Topology.Star ~covers:[] ~leaf_queries b))

let test_topology_durable_restart () =
  let b, t = build_star () in
  T.Topology.enable_durability t;
  let victim = List.hd (T.Topology.leaves t) in
  let name = T.Leaf.name victim in
  T.Topology.crash_leaf t victim;
  Alcotest.(check (list string)) "victim listed as down" [ name ]
    (T.Topology.crashed_leaves t);
  check_int "leaf gone from the live set" 3 (List.length (T.Topology.leaves t));
  apply b (Update.add (person "while_down" ~dept:"1" ()));
  let leaf, report = must (T.Topology.restart_leaf t ~name) in
  check_bool "durable restart carries a recovery report" true (report <> None);
  Alcotest.(check (list string)) "no leaf down anymore" []
    (T.Topology.crashed_leaves t);
  (match report with
  | Some r ->
      check_bool "subscription recovered from the slot table" true
        (List.length r.R.Filter_replica.filters = 1);
      check_bool "resume cookie was durable" true
        (List.for_all
           (fun (fr : R.Filter_replica.filter_recovery) ->
             fr.R.Filter_replica.fr_cookie <> None)
           r.R.Filter_replica.filters)
  | None -> ());
  T.Topology.sync_round t;
  check_bool "restarted leaf converges on the missed update" true
    (T.Topology.leaf_converged t leaf)

let test_topology_cold_restart () =
  let b, t = build_star () in
  let victim = List.hd (T.Topology.leaves t) in
  let name = T.Leaf.name victim in
  T.Topology.crash_leaf t victim;
  apply b (Update.add (person "while_down" ~dept:"1" ()));
  let leaf, report = must (T.Topology.restart_leaf t ~name) in
  check_bool "cold restart has no recovery report" true (report = None);
  T.Topology.sync_round t;
  check_bool "cold restart re-subscribes and converges" true
    (T.Topology.leaf_converged t leaf)

let test_topology_restart_errors () =
  let _, t = build_star () in
  let victim = List.hd (T.Topology.leaves t) in
  check_bool "restarting a live leaf is an error" true
    (match T.Topology.restart_leaf t ~name:(T.Leaf.name victim) with
    | Error _ -> true
    | Ok _ -> false);
  T.Topology.crash_leaf t victim;
  check_bool "crashing a down leaf is an error" true
    (match T.Topology.crash_leaf t victim with
    | exception Invalid_argument _ -> true
    | () -> false)

(* --- Checkpoint crash window ------------------------------------------ *)

let test_checkpoint_crash_window_resyncs () =
  (* A crash between the snapshot rename and the WAL reset leaves the
     snapshot one generation ahead of the surviving log.  Recovery must
     discard the stale records, treat the store as damaged and repair
     the replica against the master before it serves reads — the
     durable cookie must never run ahead of the recovered content. *)
  let b = make_backend () in
  apply b (Update.add (person "alice" ()));
  let master = Master.create b in
  let replica = R.Filter_replica.create master in
  let m = Store.Medium.memory () in
  R.Filter_replica.attach_store replica m ~prefix:"replica";
  must (R.Filter_replica.install_filter replica (dept_query "7"));
  R.Filter_replica.sync replica;
  R.Filter_replica.checkpoint replica;
  (* Updates journaled after the checkpoint: the crash window below
     leaves them behind as a previous-generation log. *)
  apply b (Update.add (person "dave" ()));
  R.Filter_replica.sync replica;
  let wal = Option.get (Store.Medium.read m ~name:"replica.f0.wal") in
  R.Filter_replica.checkpoint replica;
  (* Crash window: the checkpoint installed its snapshot but died
     before resetting the log — restore the pre-checkpoint WAL under
     the new snapshot. *)
  Store.Medium.truncate m ~name:"replica.f0.wal" 0;
  Store.Medium.append m ~name:"replica.f0.wal" wal;
  Store.Medium.sync m ~name:"replica.f0.wal";
  R.Filter_replica.detach_store replica;
  (* The master moves on while the replica is down. *)
  apply b (Update.add (person "erin" ()));
  let replica2, report =
    must
      (R.Filter_replica.recover_over
         (R.Filter_replica.transport replica)
         ~master_host:(R.Filter_replica.master_host replica)
         m ~prefix:"replica")
  in
  (match report.R.Filter_replica.filters with
  | [ fr ] ->
      check_bool "stale-generation records discarded" true
        (fr.R.Filter_replica.fr_stale > 0);
      check_bool "recovery forced a resync" true
        (fr.R.Filter_replica.fr_resync <> R.Filter_replica.Resync_none)
  | frs -> Alcotest.failf "expected one filter recovery, got %d" (List.length frs));
  (* The repair ran before the replica could serve: content already
     matches the master including the missed update. *)
  let c = Option.get (R.Filter_replica.consumer_for replica2 (dept_query "7")) in
  check_bool "content caught up before serving" true
    (entry_sets_equal c b (dept_query "7"));
  (* And the fresh cookie is coherent: the next poll is an incremental
     no-op, not a degraded resync. *)
  apply b (Update.add (person "frank" ()));
  R.Filter_replica.sync replica2;
  check_bool "cookie resumes incrementally" true (entry_sets_equal c b (dept_query "7"))

let suite =
  [
    Alcotest.test_case "backend recovery" `Quick test_backend_recovery;
    Alcotest.test_case "checkpoint crash window" `Quick
      test_checkpoint_crash_window_resyncs;
    Alcotest.test_case "master keeps sessions" `Quick
      test_master_recovery_keeps_sessions;
    Alcotest.test_case "cold master degrades" `Quick
      test_master_cold_cookie_degrades;
    Alcotest.test_case "consumer prefix consistency" `Quick
      test_consumer_every_prefix_consistent;
    Alcotest.test_case "interrupted = uninterrupted" `Quick
      test_interrupted_equals_uninterrupted;
    QCheck_alcotest.to_alcotest prop_recovered_equals_live;
    Alcotest.test_case "topology durable restart" `Quick
      test_topology_durable_restart;
    Alcotest.test_case "topology cold restart" `Quick test_topology_cold_restart;
    Alcotest.test_case "topology restart errors" `Quick
      test_topology_restart_errors;
  ]
