let () =
  Alcotest.run "ldap-filter-replication"
    [
      ("dn", Test_dn.suite);
      ("value", Test_value.suite);
      ("entry+schema", Test_entry.suite);
      ("filter", Test_filter.suite);
      ("compile", Test_compile.suite);
      ("query", Test_query.suite);
      ("containment", Test_containment.suite);
      ("symbolic", Test_symbolic.suite);
      ("dit+index", Test_dit.suite);
      ("content-store", Test_content_store.suite);
      ("backend", Test_backend.suite);
      ("network", Test_network.suite);
      ("sim", Test_sim.suite);
      ("resync", Test_resync.suite);
      ("dispatch", Test_dispatch.suite);
      ("topology", Test_topology.suite);
      ("replication", Test_replication.suite);
      ("selection", Test_selection.suite);
      ("dirgen", Test_dirgen.suite);
      ("ldif", Test_ldif.suite);
      ("extensions", Test_extensions.suite);
      ("ber", Test_ber.suite);
      ("store", Test_store.suite);
      ("antientropy", Test_antientropy.suite);
      ("recovery", Test_recovery.suite);
      ("eval", Test_eval.suite);
      ("shard", Test_shard.suite);
      ("adaptive", Test_adaptive.suite);
    ]
