(* Merkle anti-entropy: hash-tree invariants and reconciliation,
   unit tests plus the QCheck properties the design leans on —
   shape-independent roots, single-path mutation, and reconvergence
   from random drift at sub-cold cost. *)

open Ldap
module AE = Ldap_antientropy

let base = Dn.of_string_exn "o=test"

let mk_entry i ~sn ~mail =
  Entry.make
    (Dn.child_ava base "cn" (Printf.sprintf "e%04d" i))
    [
      ("objectclass", [ "person" ]);
      ("cn", [ Printf.sprintf "e%04d" i ]);
      ("sn", [ sn ]);
      ("mail", [ mail ]);
    ]

let small_config = { AE.Tree.segments = 16; branch_factor = 4 }

(* --- Unit tests ------------------------------------------------------- *)

let test_depth_and_shape () =
  Alcotest.(check int) "depth" 3 (AE.Tree.depth AE.Tree.default_config);
  Alcotest.(check int) "branches" 16
    (AE.Tree.branch_count AE.Tree.default_config);
  Alcotest.(check int) "ragged branches" 5
    (AE.Tree.branch_count { AE.Tree.segments = 17; branch_factor = 4 });
  Alcotest.(check (list int)) "segments of branch" [ 4; 5; 6; 7 ]
    (AE.Tree.segments_of_branch small_config 1)

let test_entry_hash_order_independent () =
  let a =
    Entry.make (Dn.child_ava base "cn" "x")
      [ ("sn", [ "b"; "a" ]); ("cn", [ "x" ]) ]
  in
  let b =
    Entry.make (Dn.child_ava base "cn" "x")
      [ ("cn", [ "x" ]); ("sn", [ "a"; "b" ]) ]
  in
  Alcotest.(check bool) "attr order irrelevant" true
    (Int64.equal (AE.Tree.entry_hash a) (AE.Tree.entry_hash b))

let test_segment_stable_under_mutation () =
  let e = mk_entry 3 ~sn:"one" ~mail:"one@x" in
  let e' = mk_entry 3 ~sn:"two" ~mail:"two@x" in
  Alcotest.(check int) "segment keyed by DN"
    (AE.Tree.segment_of_dn small_config (Entry.dn e))
    (AE.Tree.segment_of_dn small_config (Entry.dn e'))

let test_serve_root () =
  let entries = List.init 20 (fun i -> mk_entry i ~sn:"s" ~mail:"m@x") in
  let reply =
    AE.Exchange.serve
      ~content:(fun () -> List.to_seq entries)
      ~cookie:(fun () -> None)
      AE.Exchange.Root
  in
  match reply with
  | AE.Exchange.Root_hash h ->
      Alcotest.(check bool) "root matches local tree" true
        (Int64.equal h (AE.Tree.root (AE.Tree.of_entries entries)))
  | _ -> Alcotest.fail "expected Root_hash"

(* --- Generators ------------------------------------------------------- *)

let word_gen = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 8))

(* A directory of [n] distinct-DN entries with random attribute
   values. *)
let entries_gen =
  let open QCheck.Gen in
  int_range 40 120 >>= fun n ->
  list_repeat n (pair word_gen word_gen) >|= fun attrs ->
  List.mapi (fun i (sn, mail) -> mk_entry i ~sn ~mail) attrs

(* --- Property: identical content, identical root ----------------------- *)

let shapes =
  [
    { AE.Tree.segments = 8; branch_factor = 2 };
    { AE.Tree.segments = 64; branch_factor = 8 };
    { AE.Tree.segments = 256; branch_factor = 16 };
    { AE.Tree.segments = 33; branch_factor = 5 };
  ]

let rotate k l =
  let n = List.length l in
  if n = 0 then l
  else
    let k = k mod n in
    List.filteri (fun i _ -> i >= k) l @ List.filteri (fun i _ -> i < k) l

let prop_root_shape_independent =
  QCheck.Test.make ~name:"antientropy: root independent of shape and order"
    ~count:60
    (QCheck.make
       ~print:(fun (es, _) -> Printf.sprintf "%d entries" (List.length es))
       QCheck.Gen.(pair entries_gen (int_range 0 1000)))
    (fun (entries, k) ->
      let root0 = AE.Tree.root (AE.Tree.of_entries ~config:(List.hd shapes) entries) in
      List.for_all
        (fun config ->
          let reordered = rotate k (List.rev entries) in
          Int64.equal root0 (AE.Tree.root (AE.Tree.of_entries ~config reordered)))
        (List.tl shapes))

(* --- Property: one mutation flips exactly one path --------------------- *)

let prop_single_mutation_single_path =
  QCheck.Test.make
    ~name:"antientropy: single mutation flips one segment-branch-root path"
    ~count:60
    (QCheck.make
       ~print:(fun (es, j, _) ->
         Printf.sprintf "%d entries, mutate %d" (List.length es) j)
       QCheck.Gen.(triple entries_gen (int_range 0 1000) word_gen))
    (fun (entries, j, fresh) ->
      let j = j mod List.length entries in
      let mutated =
        List.mapi
          (fun i e ->
            if i = j then mk_entry i ~sn:("z" ^ fresh) ~mail:"mutated@x" else e)
          entries
      in
      let victim = List.nth entries j in
      QCheck.assume
        (not (Int64.equal (AE.Tree.entry_hash victim)
                (AE.Tree.entry_hash (List.nth mutated j))));
      let config = small_config in
      let before = AE.Tree.of_entries ~config entries in
      let after = AE.Tree.of_entries ~config mutated in
      let seg_diffs =
        List.filter
          (fun s -> not (Int64.equal (AE.Tree.segment before s) (AE.Tree.segment after s)))
          (List.init config.AE.Tree.segments Fun.id)
      in
      let branch_diffs = AE.Tree.diff_branches before (AE.Tree.branches after) in
      (not (Int64.equal (AE.Tree.root before) (AE.Tree.root after)))
      && seg_diffs = [ AE.Tree.segment_of_dn config (Entry.dn victim) ]
      && (match branch_diffs with
         | [ b ] -> List.mem (List.hd seg_diffs) (AE.Tree.segments_of_branch config b)
         | _ -> false))

(* --- Property: reconciliation reconverges, cheaper than cold ----------- *)

(* Random drift: each server entry is kept, mutated or deleted by the
   per-entry rolls, plus a few entries only the server has. *)
let drift_gen =
  let open QCheck.Gen in
  entries_gen >>= fun entries ->
  list_repeat (List.length entries) (pair (int_range 0 99) word_gen)
  >>= fun rolls ->
  int_range 0 5 >>= fun born ->
  list_repeat born (pair word_gen word_gen) >|= fun born_attrs ->
  (entries, rolls, born_attrs)

let cold_bytes entries =
  List.fold_left (fun acc e -> acc + Ber.entry_size e) 0 entries

let prop_reconcile_reconverges =
  QCheck.Test.make
    ~name:"antientropy: reconciliation reconverges, cheaper than cold"
    ~count:40
    (QCheck.make
       ~print:(fun (es, _, born) ->
         Printf.sprintf "%d entries, %d born" (List.length es) (List.length born))
       drift_gen)
    (fun (entries, rolls, born_attrs) ->
      (* Client holds the pre-drift content; the server applied ~10%
         mutations, ~5% deletions and a few births. *)
      let server =
        List.concat
          (List.mapi
             (fun i (e, (roll, w)) ->
               if roll < 10 then
                 [ mk_entry i ~sn:("drift" ^ w) ~mail:"drifted@x" ]
               else if roll < 15 then []
               else [ e ])
             (List.combine entries rolls))
        @ List.mapi
            (fun k (sn, mail) -> mk_entry (10_000 + k) ~sn ~mail)
            born_attrs
      in
      let client = ref entries in
      let result =
        AE.Exchange.reconcile ~config:small_config
          ~local:(fun () -> List.to_seq !client)
          ~apply:(fun ~upserts ~deletes ~cookie:_ ->
            let dead dn =
              List.exists (fun d -> Dn.compare d dn = 0) deletes
            in
            let replaced dn =
              List.exists (fun u -> Dn.compare (Entry.dn u) dn = 0) upserts
            in
            client :=
              List.filter
                (fun e -> not (dead (Entry.dn e) || replaced (Entry.dn e)))
                !client
              @ upserts)
          ~rpc:(fun request ->
            Ok
              (AE.Exchange.serve
                 ~content:(fun () -> List.to_seq server)
                 ~cookie:(fun () -> None)
                 request))
          ()
      in
      match result with
      | Error e -> QCheck.Test.fail_reportf "reconcile failed: %s" e
      | Ok report ->
          let sort = List.sort (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b)) in
          let converged_content =
            List.length !client = List.length server
            && List.for_all2 Entry.equal (sort !client) (sort server)
          in
          let walk_bytes = report.AE.Exchange.bytes_sent + report.AE.Exchange.bytes_received in
          (* The walk ships whole drifted segments plus three hash
             tiers, so it only undercuts cold re-fetch when the drift
             left a majority of segments clean; the generator's ~15%
             drift usually does, but its tail can dirty nearly all 16
             segments and legitimately tie with cold. *)
          let touched =
            let before = AE.Tree.of_entries ~config:small_config entries in
            let after = AE.Tree.of_entries ~config:small_config server in
            List.length
              (List.filter
                 (fun s ->
                   not (Int64.equal (AE.Tree.segment before s) (AE.Tree.segment after s)))
                 (List.init small_config.AE.Tree.segments Fun.id))
          in
          report.AE.Exchange.converged && converged_content
          && (2 * touched > small_config.AE.Tree.segments
             || walk_bytes < cold_bytes server))

let suite =
  [
    Alcotest.test_case "tree shape" `Quick test_depth_and_shape;
    Alcotest.test_case "entry hash canonical" `Quick test_entry_hash_order_independent;
    Alcotest.test_case "segment stable under mutation" `Quick
      test_segment_stable_under_mutation;
    Alcotest.test_case "serve root" `Quick test_serve_root;
    QCheck_alcotest.to_alcotest prop_root_shape_independent;
    QCheck_alcotest.to_alcotest prop_single_mutation_single_path;
    QCheck_alcotest.to_alcotest prop_reconcile_reconverges;
  ]
