(* Tests for the simulated network: referral chasing corner cases,
   loop protection and traffic accounting. *)
open Ldap

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let must = function Ok x -> x | Error e -> failwith e

let entry dn_s attrs = Entry.make (dn dn_s) attrs

let simple_server name suffix entries ?default_referral () =
  let b = Backend.create schema in
  must (Backend.add_context b (entry suffix [ ("objectclass", [ "organization" ]); ("o", [ "x" ]) ]));
  List.iter (fun e -> ignore (must (Backend.apply b (Update.Add e)))) entries;
  Server.create ?default_referral ~name b

let q base = Query.make ~base:(dn base) Filter.tt

let test_unknown_host () =
  let net = Network.create () in
  match Network.search net ~from:"nowhere" (q "o=x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure"

let test_single_server () =
  let net = Network.create () in
  Network.add_server net
    (simple_server "a" "o=x"
       [ entry "cn=e,o=x" [ ("objectclass", [ "person" ]); ("cn", [ "e" ]); ("sn", [ "e" ]) ] ]
       ());
  (match Network.search net ~from:"a" (q "o=x") with
  | Ok entries -> check_int "entries" 2 (List.length entries)
  | Error e -> Alcotest.fail e);
  let stats = Network.stats net in
  check_int "one round trip" 1 stats.Network.round_trips;
  check_int "entry pdus" 2 stats.Network.entry_pdus;
  check_bool "bytes counted" true (stats.Network.bytes > 0)

let test_referral_loop_guard () =
  (* Two servers whose default referrals point at each other: the
     client must terminate rather than bounce forever. *)
  let net = Network.create () in
  Network.add_server net
    (simple_server "a" "o=a" [] ~default_referral:(Referral.make ~host:"b" ()) ());
  Network.add_server net
    (simple_server "b" "o=b" [] ~default_referral:(Referral.make ~host:"a" ()) ());
  match Network.search net ~from:"a" (q "o=zzz") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected loop detection failure"

let test_no_superior_fails () =
  let net = Network.create () in
  Network.add_server net (simple_server "a" "o=a" [] ());
  match Network.search net ~from:"a" (q "o=other") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected noSuchObject"

let test_stats_reset () =
  let net = Network.create () in
  Network.add_server net (simple_server "a" "o=x" [] ());
  ignore (Network.search net ~from:"a" (q "o=x"));
  Network.reset_stats net;
  let stats = Network.stats net in
  check_int "round trips" 0 stats.Network.round_trips;
  check_int "bytes" 0 stats.Network.bytes

let test_overlap_dedupe () =
  (* Two servers reached through a continuation reference both return
     e2: the client must report it once, in first-seen order. *)
  let net = Network.create () in
  let e name = entry (Printf.sprintf "cn=%s,o=x" name) [ ("objectclass", [ "person" ]); ("cn", [ name ]); ("sn", [ name ]) ] in
  Network.add_handler net ~name:"a" (fun _ ->
      Server.Entries
        {
          Backend.entries = [ e "e1"; e "e2" ];
          references = [ [ Referral.make ~host:"b" () ] ];
        });
  Network.add_handler net ~name:"b" (fun _ ->
      Server.Entries { Backend.entries = [ e "e2"; e "e3" ]; references = [] });
  match Network.search net ~from:"a" (q "o=x") with
  | Ok entries ->
      check_int "deduplicated" 3 (List.length entries);
      Alcotest.(check (list string)) "first-seen order" [ "e1"; "e2"; "e3" ]
        (List.map (fun e -> List.hd (Entry.get e "cn")) entries)
  | Error e -> Alcotest.fail e

(* --- Fault-injectable rpc -------------------------------------------- *)

let rpc_with net faults =
  Network.rpc net ?faults ~from:"c" ~host:"s" ~request_bytes:10
    ~reply_bytes:(fun _ -> 20)

let test_rpc_deliver () =
  let net = Network.create () in
  (match rpc_with net None (fun () -> 42) with
  | Ok v -> check_int "value" 42 v
  | Error _ -> Alcotest.fail "expected delivery");
  let stats = Network.stats net in
  check_int "one rpc" 1 stats.Network.sync_rpcs;
  check_int "request+reply bytes" 30 stats.Network.sync_bytes;
  check_int "nothing dropped" 0 stats.Network.dropped_pdus

let test_rpc_drop_request () =
  let net = Network.create () in
  let faults = Network.Faults.create () in
  Network.Faults.script faults [ Network.Faults.Drop_request ];
  let served = ref false in
  (match rpc_with net (Some faults) (fun () -> served := true) with
  | Error Network.Timeout -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected timeout");
  check_bool "server never ran" false !served;
  let stats = Network.stats net in
  check_int "request bytes only" 10 stats.Network.sync_bytes;
  check_int "one dropped" 1 stats.Network.dropped_pdus

let test_rpc_drop_reply () =
  (* The server runs — its side effects stand — but the client times
     out, and the reply's bytes were still on the wire. *)
  let net = Network.create () in
  let faults = Network.Faults.create () in
  Network.Faults.script faults [ Network.Faults.Drop_reply ];
  let served = ref false in
  (match rpc_with net (Some faults) (fun () -> served := true) with
  | Error Network.Timeout -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected timeout");
  check_bool "server ran" true !served;
  let stats = Network.stats net in
  check_int "request+reply bytes" 30 stats.Network.sync_bytes;
  check_int "one dropped" 1 stats.Network.dropped_pdus

let test_rpc_refuse_and_partition () =
  let net = Network.create () in
  let faults = Network.Faults.create () in
  Network.Faults.script faults [ Network.Faults.Refuse ];
  let served = ref false in
  (match rpc_with net (Some faults) (fun () -> served := true) with
  | Error (Network.Refused _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected refusal");
  check_bool "refusal precedes serving" false !served;
  Network.Faults.partition faults ~a:"c" ~b:"s";
  (match rpc_with net (Some faults) (fun () -> served := true) with
  | Error (Network.Unreachable "s") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected unreachable");
  check_bool "partition blocks" false !served;
  Network.Faults.heal faults ~a:"c" ~b:"s";
  match rpc_with net (Some faults) (fun () -> served := true) with
  | Ok () -> check_bool "healed link delivers" true !served
  | Error _ -> Alcotest.fail "expected delivery after heal"

let suite =
  [
    Alcotest.test_case "unknown host" `Quick test_unknown_host;
    Alcotest.test_case "single server" `Quick test_single_server;
    Alcotest.test_case "referral loop guard" `Quick test_referral_loop_guard;
    Alcotest.test_case "no superior fails" `Quick test_no_superior_fails;
    Alcotest.test_case "stats reset" `Quick test_stats_reset;
    Alcotest.test_case "overlap dedupe" `Quick test_overlap_dedupe;
    Alcotest.test_case "rpc deliver" `Quick test_rpc_deliver;
    Alcotest.test_case "rpc drop request" `Quick test_rpc_drop_request;
    Alcotest.test_case "rpc drop reply" `Quick test_rpc_drop_reply;
    Alcotest.test_case "rpc refuse+partition" `Quick test_rpc_refuse_and_partition;
  ]
