(* Tests for the ReSync protocol: session lifecycle, minimal update
   sets, degraded mode, baselines and a convergence property. *)
open Ldap
open Ldap_resync

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let org = Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let person name ?(dept = "100") () =
  Entry.make
    (dn (Printf.sprintf "cn=%s,o=xyz" name))
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]);
      ("sn", [ name ]);
      ("departmentNumber", [ dept ]);
    ]

let make_backend () =
  let b = Backend.create ~indexed:[ "departmentnumber" ] schema in
  (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
  b

let apply b op = match Backend.apply b op with Ok _ -> () | Error e -> failwith e

let dept_query dept = Query.make ~base:(dn "o=xyz") (f (Printf.sprintf "(departmentNumber=%s)" dept))

let kinds actions = List.map Action.kind_name actions |> List.sort String.compare

let test_initial_content () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  apply b (Update.add (person "c" ~dept:"8" ()));
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with
  | Ok reply ->
      check_bool "initial kind" true (reply.Protocol.kind = Protocol.Initial_content);
      check_int "two adds" 2 (Protocol.entries_cost reply)
  | Error e -> failwith e);
  check_int "consumer holds 2" 2 (Consumer.size consumer);
  check_bool "cookie stored" true (Consumer.cookie consumer <> None)

let test_incremental_minimal () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  (* Entry enters content, one changes within, one leaves. *)
  apply b (Update.add (person "b" ~dept:"7" ()));
  apply b (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "mail" [ "a@x" ] ]);
  apply b (Update.modify (dn "cn=b,o=xyz") [ Update.replace_values "departmentNumber" [ "9" ] ]);
  match Consumer.sync consumer master with
  | Ok reply ->
      (* b moved in then out: coalesced away.  Only a's modify remains. *)
      Alcotest.(check (list string)) "only modify" [ "modify" ] (kinds reply.Protocol.actions);
      check_int "consumer holds 1" 1 (Consumer.size consumer)
  | Error e -> failwith e

let test_rename_within_content () =
  (* Figure 3: a modify DN that keeps the entry in content is a delete
     of the old DN followed by an add of the new one. *)
  let b = make_backend () in
  apply b (Update.add (person "e3" ~dept:"7" ()));
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  let new_rdn = match Dn.rdn_of_string "cn=e5" with Ok r -> r | Error e -> failwith e in
  apply b (Update.modify_dn (dn "cn=e3,o=xyz") new_rdn);
  match Consumer.sync consumer master with
  | Ok reply ->
      Alcotest.(check (list string)) "delete+add" [ "add"; "delete" ]
        (kinds reply.Protocol.actions);
      check_bool "new dn held" true (Consumer.find consumer (dn "cn=e5,o=xyz") <> None);
      check_bool "old dn gone" true (Consumer.find consumer (dn "cn=e3,o=xyz") = None)
  | Error e -> failwith e

let test_add_then_delete_coalesces () =
  let b = make_backend () in
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  apply b (Update.add (person "x" ~dept:"7" ()));
  apply b (Update.delete (dn "cn=x,o=xyz"));
  match Consumer.sync consumer master with
  | Ok reply -> check_int "nothing sent" 0 (List.length reply.Protocol.actions)
  | Error e -> failwith e

let test_degraded_mode () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  apply b (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "mail" [ "a@x" ] ]);
  (* Kill the session server-side: the cookie becomes unknown. *)
  Master.expire_sessions master ~idle_limit:0;
  check_int "sessions expired" 0 (Master.session_count master);
  match Consumer.sync consumer master with
  | Ok reply ->
      check_bool "degraded kind" true (reply.Protocol.kind = Protocol.Degraded);
      (* a changed since the cookie: resent; b unchanged: retained. *)
      Alcotest.(check (list string)) "add+retain" [ "add"; "retain" ]
        (kinds reply.Protocol.actions);
      check_int "still 2 entries" 2 (Consumer.size consumer)
  | Error e -> failwith e

let test_degraded_prunes_stale () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  (* b leaves the content while the session is lost. *)
  apply b (Update.modify (dn "cn=b,o=xyz") [ Update.replace_values "departmentNumber" [ "9" ] ]);
  Master.expire_sessions master ~idle_limit:0;
  match Consumer.sync consumer master with
  | Ok reply ->
      check_bool "degraded" true (reply.Protocol.kind = Protocol.Degraded);
      check_bool "b pruned" true (Consumer.find consumer (dn "cn=b,o=xyz") = None);
      check_int "one entry" 1 (Consumer.size consumer)
  | Error e -> failwith e

let test_sync_end () =
  let b = make_backend () in
  let master = Master.create b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  check_int "one session" 1 (Master.session_count master);
  let cookie = Option.get (Consumer.cookie consumer) in
  (match
     Master.handle master { Protocol.mode = Protocol.Sync_end; cookie = Some cookie }
       (dept_query "7")
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  check_int "session gone" 0 (Master.session_count master)

let test_persist_push () =
  let b = make_backend () in
  let master = Master.create b in
  let pushed = ref [] in
  let request = { Protocol.mode = Protocol.Persist; cookie = None } in
  (match Master.handle master
           ~push:(Protocol.push_of_fn (fun a -> pushed := a :: !pushed))
           request (dept_query "7") with
  | Ok reply -> check_int "initial empty" 0 (List.length reply.Protocol.actions)
  | Error e -> failwith e);
  apply b (Update.add (person "p" ~dept:"7" ()));
  apply b (Update.modify (dn "cn=p,o=xyz") [ Update.replace_values "mail" [ "p@x" ] ]);
  apply b (Update.delete (dn "cn=p,o=xyz"));
  Alcotest.(check (list string)) "live notifications" [ "add"; "delete"; "modify" ]
    (kinds !pushed);
  check_bool "persist without push rejected" true
    (Result.is_error (Master.handle master request (dept_query "7")))

let test_persist_filters_out_of_content () =
  let b = make_backend () in
  let master = Master.create b in
  let pushed = ref [] in
  let request = { Protocol.mode = Protocol.Persist; cookie = None } in
  (match Master.handle master
           ~push:(Protocol.push_of_fn (fun a -> pushed := a :: !pushed))
           request (dept_query "7") with
  | Ok _ -> ()
  | Error e -> failwith e);
  apply b (Update.add (person "q" ~dept:"9" ()));
  check_int "out-of-content update not pushed" 0 (List.length !pushed)

let test_attribute_selection_in_actions () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  let master = Master.create b in
  let query =
    Query.make ~attrs:(Query.Select [ "cn" ]) ~base:(dn "o=xyz") (f "(departmentNumber=7)")
  in
  let consumer = Consumer.create schema query in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  let e = Option.get (Consumer.find consumer (dn "cn=a,o=xyz")) in
  check_bool "cn present" true (Entry.has_attribute e "cn");
  check_bool "dept absent" false (Entry.has_attribute e "departmentnumber")

let test_malformed_cookie () =
  let b = make_backend () in
  let master = Master.create b in
  check_bool "malformed rejected" true
    (Result.is_error
       (Master.handle master { Protocol.mode = Protocol.Poll; cookie = Some "bogus" }
          (dept_query "7")));
  check_bool "parse_cookie" true (Master.parse_cookie "rs:3:17" = Some (3, Csn.of_int 17));
  check_bool "parse bad" true (Master.parse_cookie "rs:x:y" = None)

(* --- Baseline comparison (section 5.2) ------------------------------- *)

let run_strategy strategy =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  apply b (Update.add (person "z" ~dept:"9" ()));
  let master = Master.create ~strategy b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  (* Updates: one out-of-content delete, one in-content delete, one
     out-of-content add, one modify-out-of-content. *)
  apply b (Update.delete (dn "cn=z,o=xyz"));
  apply b (Update.delete (dn "cn=b,o=xyz"));
  apply b (Update.add (person "y" ~dept:"9" ()));
  apply b (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "departmentNumber" [ "9" ] ]);
  let reply =
    match Consumer.sync consumer master with Ok r -> r | Error e -> failwith e
  in
  (consumer, reply, b)

let test_session_history_exact () =
  let consumer, reply, b = run_strategy Master.Session_history in
  (* Exactly: delete b, delete a (moved out).  z's delete is invisible. *)
  Alcotest.(check (list string)) "exact deletes" [ "delete"; "delete" ]
    (kinds reply.Protocol.actions);
  check_int "consumer empty" 0 (Consumer.size consumer);
  ignore b

let test_changelog_conservative () =
  let consumer, reply, _ = run_strategy Master.Changelog in
  (* Changelog cannot classify deletes: z's delete is also sent. *)
  check_bool "more deletes than needed" true (List.length reply.Protocol.actions >= 3);
  check_int "still converges" 0 (Consumer.size consumer)

let test_tombstone_conservative () =
  let consumer, reply, _ = run_strategy Master.Tombstone in
  check_bool "more deletes than needed" true (List.length reply.Protocol.actions >= 3);
  check_int "still converges" 0 (Consumer.size consumer)

let test_history_sizes () =
  let strategies = [ Master.Session_history; Master.Changelog; Master.Tombstone ] in
  let sizes =
    List.map
      (fun strategy ->
        let b = make_backend () in
        let master = Master.create ~strategy b in
        let consumer = Consumer.create schema (dept_query "7") in
        (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
        (* Many out-of-content updates: session history stays empty. *)
        for i = 0 to 19 do
          apply b (Update.add (person (Printf.sprintf "n%d" i) ~dept:"9" ()))
        done;
        Master.history_size master)
      strategies
  in
  match sizes with
  | [ session; changelog; _tombstone ] ->
      check_int "session history empty" 0 session;
      check_bool "changelog grows" true (changelog >= 20)
  | _ -> assert false

let test_changelog_trim_degrades () =
  (* Trimming the master's log must not silently lose updates for the
     changelog strategy: the poll degrades instead. *)
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  let master = Master.create ~strategy:Master.Changelog b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  apply b (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "departmentNumber" [ "9" ] ]);
  apply b (Update.delete (dn "cn=b,o=xyz"));
  Backend.trim_log b ~before:(Csn.next (Backend.csn b));
  (match Consumer.sync consumer master with
  | Ok reply ->
      check_bool "degraded fallback" true (reply.Protocol.kind = Protocol.Degraded)
  | Error e -> failwith e);
  check_int "still converges" 0 (Consumer.size consumer);
  (* Session history is immune to trimming: its buffers are its own. *)
  let b2 = make_backend () in
  apply b2 (Update.add (person "a" ~dept:"7" ()));
  let master2 = Master.create b2 in
  let consumer2 = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer2 master2 with Ok _ -> () | Error e -> failwith e);
  apply b2 (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "mail" [ "m@x" ] ]);
  Backend.trim_log b2 ~before:(Csn.next (Backend.csn b2));
  match Consumer.sync consumer2 master2 with
  | Ok reply ->
      check_bool "incremental despite trim" true
        (reply.Protocol.kind = Protocol.Incremental);
      Alcotest.(check (list string)) "exact modify" [ "modify" ] (kinds reply.Protocol.actions)
  | Error e -> failwith e

(* --- Fault injection over the transport ------------------------------ *)

let faulty_setup () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  let master = Master.create b in
  let net = Network.create () in
  let faults = Network.Faults.create () in
  let transport = Transport.create ~faults net in
  Transport.add_master transport ~name:"m" master;
  (b, master, net, faults, transport)

let converged b consumer =
  Dn.Set.equal
    (Content.current_dns b (Consumer.query consumer))
    (Consumer.dns consumer)

let test_dropped_reply_recovers () =
  let b, master, _net, faults, transport = faulty_setup () in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync_over consumer transport ~host:"m" with
  | Ok o ->
      check_bool "initial" true (o.Consumer.reply.Protocol.kind = Protocol.Initial_content);
      check_int "one attempt" 1 o.Consumer.attempts
  | Error e -> failwith (Consumer.sync_error_to_string e));
  apply b (Update.modify (dn "cn=a,o=xyz") [ Update.replace_values "mail" [ "a@x" ] ]);
  apply b (Update.add (person "c" ~dept:"7" ()));
  (* The master processes the poll (clearing its pending buffer and
     advancing the session CSN) but the reply is lost.  The retry's
     stale cookie must trigger a degraded resync, not a silent gap. *)
  Network.Faults.script faults [ Network.Faults.Drop_reply ];
  (match Consumer.sync_over consumer transport ~host:"m" with
  | Ok o ->
      check_int "two attempts" 2 o.Consumer.attempts;
      check_int "one backoff tick" 1 o.Consumer.backoff;
      check_bool "degraded recovery" true
        (o.Consumer.reply.Protocol.kind = Protocol.Degraded);
      check_bool "counted as resync" true o.Consumer.resynced
  | Error e -> failwith (Consumer.sync_error_to_string e));
  check_bool "converged" true (converged b consumer);
  ignore master

let test_expired_session_resumes () =
  let b, master, _net, _faults, transport = faulty_setup () in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync_over consumer transport ~host:"m" with
  | Ok _ -> ()
  | Error e -> failwith (Consumer.sync_error_to_string e));
  apply b (Update.add (person "d" ~dept:"7" ()));
  apply b (Update.delete (dn "cn=b,o=xyz"));
  Master.expire_sessions master ~idle_limit:0;
  (match Consumer.sync_over consumer transport ~host:"m" with
  | Ok o ->
      check_bool "degraded resume" true
        (o.Consumer.reply.Protocol.kind = Protocol.Degraded);
      check_bool "counted as resync" true o.Consumer.resynced
  | Error e -> failwith (Consumer.sync_error_to_string e));
  check_bool "converged" true (converged b consumer)

let test_retry_exhaustion () =
  let b, _master, _net, faults, transport = faulty_setup () in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync_over consumer transport ~host:"m" with
  | Ok _ -> ()
  | Error e -> failwith (Consumer.sync_error_to_string e));
  let cookie_before = Consumer.cookie consumer in
  apply b (Update.add (person "e" ~dept:"7" ()));
  Network.Faults.script faults
    [
      Network.Faults.Drop_request; Network.Faults.Drop_request;
      Network.Faults.Drop_request; Network.Faults.Drop_request;
    ];
  (match Consumer.sync_over consumer transport ~host:"m" with
  | Error (Consumer.Exhausted { attempts; last = Network.Timeout }) ->
      check_int "budget spent" 4 attempts
  | Error e -> failwith (Consumer.sync_error_to_string e)
  | Ok _ -> Alcotest.fail "expected exhaustion");
  (* Cookie and content survive; the dropped requests never reached
     the master, so the next poll replays incrementally. *)
  check_bool "cookie kept" true (Consumer.cookie consumer = cookie_before);
  match Consumer.sync_over consumer transport ~host:"m" with
  | Ok o ->
      check_bool "incremental after recovery" true
        (o.Consumer.reply.Protocol.kind = Protocol.Incremental);
      check_bool "not a resync" false o.Consumer.resynced;
      check_bool "converged" true (converged b consumer)
  | Error e -> failwith (Consumer.sync_error_to_string e)

let test_persist_reconnect () =
  let b, master, _net, faults, transport = faulty_setup () in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.connect_persist consumer transport ~host:"m" ~from:"consumer" with
  | Ok _ -> ()
  | Error e -> failwith (Consumer.sync_error_to_string e));
  check_bool "connected" true (Consumer.persist_alive consumer);
  apply b (Update.add (person "p1" ~dept:"7" ()));
  check_int "push applied" 3 (Consumer.size consumer);
  (* The link drops: the next push dies and takes the connection with
     it — detected lazily, like half-open TCP. *)
  Network.Faults.partition faults ~a:"consumer" ~b:"m";
  apply b (Update.add (person "p2" ~dept:"7" ()));
  check_bool "connection broken" false (Consumer.persist_alive consumer);
  check_int "push lost" 3 (Consumer.size consumer);
  apply b (Update.add (person "p3" ~dept:"7" ()));
  Network.Faults.heal faults ~a:"consumer" ~b:"m";
  (match Consumer.ensure_persist consumer transport ~host:"m" ~from:"consumer" with
  | Ok (Some o) ->
      (* The master pushed p1..p3 through (advancing the session CSN)
         while the consumer only acknowledged the establishment CSN:
         reconnection must resynchronize, not resume silently. *)
      check_bool "degraded reconnect" true
        (o.Consumer.reply.Protocol.kind = Protocol.Degraded);
      check_bool "counted as resync" true o.Consumer.resynced
  | Ok None -> Alcotest.fail "expected reconnection"
  | Error e -> failwith (Consumer.sync_error_to_string e));
  check_bool "reconnected" true (Consumer.persist_alive consumer);
  check_bool "converged" true (converged b consumer);
  (* New pushes flow through the fresh connection. *)
  apply b (Update.add (person "p4" ~dept:"7" ()));
  check_bool "live again" true (converged b consumer);
  check_int "one persistent session" 1 (Master.persistent_count master)

let test_ensure_persist_noop_when_alive () =
  let b, _master, _net, _faults, transport = faulty_setup () in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.connect_persist consumer transport ~host:"m" with
  | Ok _ -> ()
  | Error e -> failwith (Consumer.sync_error_to_string e));
  (match Consumer.ensure_persist consumer transport ~host:"m" with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "reconnected a live connection"
  | Error e -> failwith (Consumer.sync_error_to_string e));
  ignore b

let test_tombstone_gc () =
  let b = make_backend () in
  apply b (Update.add (person "a" ~dept:"7" ()));
  apply b (Update.add (person "b" ~dept:"7" ()));
  let master = Master.create ~strategy:Master.Tombstone b in
  let consumer = Consumer.create schema (dept_query "7") in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  apply b (Update.delete (dn "cn=a,o=xyz"));
  apply b (Update.delete (dn "cn=b,o=xyz"));
  check_int "tombstones retained for the live session" 2 (Master.history_size master);
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  (* Every session has acknowledged past both deletes: nothing can
     replay them again. *)
  check_int "tombstones pruned after poll" 0 (Master.history_size master);
  check_bool "converged" true (converged b consumer);
  (* With no sessions at all, deletes leave no tombstones behind. *)
  let b2 = make_backend () in
  apply b2 (Update.add (person "x" ~dept:"7" ()));
  let master2 = Master.create ~strategy:Master.Tombstone b2 in
  apply b2 (Update.delete (dn "cn=x,o=xyz"));
  check_int "no sessions, no tombstones" 0 (Master.history_size master2)

let test_persist_advances_synced_csn () =
  (* An idle persistent session must not pin changelog history: every
     pushed-through update (even a no-op for its filter) advances its
     acknowledged CSN. *)
  let b = make_backend () in
  let master = Master.create ~strategy:Master.Changelog b in
  let consumer = Consumer.create schema (dept_query "7") in
  let transport = Transport.loopback master in
  (match Consumer.connect_persist consumer transport ~host:Transport.loopback_host with
  | Ok _ -> ()
  | Error e -> failwith (Consumer.sync_error_to_string e));
  for i = 0 to 19 do
    apply b (Update.add (person (Printf.sprintf "o%d" i) ~dept:"9" ()))
  done;
  check_int "changelog not pinned by idle persist" 0 (Master.history_size master)

(* --- Convergence property --------------------------------------------
   Arbitrary interleavings of updates and polls always leave the
   consumer's content equal to the master's current content. *)

type sim_op =
  | Op_add of int * int  (* name i, dept d *)
  | Op_delete of int
  | Op_move_dept of int * int
  | Op_rename of int * int
  | Op_poll
  | Op_expire

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun i d -> Op_add (i, d)) (0 -- 20) (7 -- 9));
        (2, map (fun i -> Op_delete i) (0 -- 20));
        (3, map2 (fun i d -> Op_move_dept (i, d)) (0 -- 20) (7 -- 9));
        (1, map2 (fun i j -> Op_rename (i, j)) (0 -- 20) (21 -- 40));
        (2, return Op_poll);
        (1, return Op_expire);
      ])

let print_op = function
  | Op_add (i, d) -> Printf.sprintf "add(%d,%d)" i d
  | Op_delete i -> Printf.sprintf "delete(%d)" i
  | Op_move_dept (i, d) -> Printf.sprintf "move(%d,%d)" i d
  | Op_rename (i, j) -> Printf.sprintf "rename(%d,%d)" i j
  | Op_poll -> "poll"
  | Op_expire -> "expire"

let entry_sets_equal consumer backend query =
  let expected =
    List.sort
      (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b))
      (Content.current backend query)
  in
  let actual =
    List.sort (fun a b -> Dn.compare (Entry.dn a) (Entry.dn b)) (Consumer.entries consumer)
  in
  List.length expected = List.length actual && List.for_all2 Entry.equal expected actual

let run_sim ops =
  let b = make_backend () in
  let master = Master.create b in
  let query = dept_query "7" in
  let consumer = Consumer.create schema query in
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  let name i = Printf.sprintf "cn=p%d,o=xyz" i in
  List.iter
    (fun op ->
      match op with
      | Op_add (i, d) ->
          ignore (Backend.apply b (Update.add (person (Printf.sprintf "p%d" i) ~dept:(string_of_int d) ())))
      | Op_delete i -> ignore (Backend.apply b (Update.delete (dn (name i))))
      | Op_move_dept (i, d) ->
          ignore
            (Backend.apply b
               (Update.modify (dn (name i))
                  [ Update.replace_values "departmentNumber" [ string_of_int d ] ]))
      | Op_rename (i, j) -> (
          match Dn.rdn_of_string (Printf.sprintf "cn=p%d" j) with
          | Ok rdn -> ignore (Backend.apply b (Update.modify_dn (dn (name i)) rdn))
          | Error _ -> ())
      | Op_poll -> ( match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e)
      | Op_expire -> Master.expire_sessions master ~idle_limit:0)
    ops;
  (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
  entry_sets_equal consumer b query

let prop_convergence =
  QCheck.Test.make ~name:"resync: converges under random ops and polls" ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map print_op ops))
       QCheck.Gen.(list_size (0 -- 40) op_gen))
    run_sim

let prop_convergence_changelog =
  QCheck.Test.make ~name:"resync: changelog baseline also converges" ~count:150
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map print_op ops))
       QCheck.Gen.(list_size (0 -- 30) op_gen))
    (fun ops ->
      (* Replace Op_expire: baselines only define poll behaviour. *)
      (* Repurpose Op_expire as a log trim: the changelog must survive
         bounded history via the degraded fallback. *)
      let b = make_backend () in
      let master = Master.create ~strategy:Master.Changelog b in
      let query = dept_query "7" in
      let consumer = Consumer.create schema query in
      (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
      let name i = Printf.sprintf "cn=p%d,o=xyz" i in
      List.iter
        (fun op ->
          match op with
          | Op_add (i, d) ->
              ignore
                (Backend.apply b
                   (Update.add (person (Printf.sprintf "p%d" i) ~dept:(string_of_int d) ())))
          | Op_delete i -> ignore (Backend.apply b (Update.delete (dn (name i))))
          | Op_move_dept (i, d) ->
              ignore
                (Backend.apply b
                   (Update.modify (dn (name i))
                      [ Update.replace_values "departmentNumber" [ string_of_int d ] ]))
          | Op_rename (i, j) -> (
              match Dn.rdn_of_string (Printf.sprintf "cn=p%d" j) with
              | Ok rdn -> ignore (Backend.apply b (Update.modify_dn (dn (name i)) rdn))
              | Error _ -> ())
          | Op_poll -> (
              match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e)
          | Op_expire -> Backend.trim_log b ~before:(Csn.next (Backend.csn b)))
        ops;
      (match Consumer.sync consumer master with Ok _ -> () | Error e -> failwith e);
      entry_sets_equal consumer b query)

(* --- Cookie round trips and session-id hygiene ----------------------- *)

let prop_reparent_cookie_roundtrip =
  QCheck.Test.make ~name:"resync: reparent_cookie round trips" ~count:200
    QCheck.(pair (int_bound 10_000) (int_bound 1_000_000))
    (fun (id, csn_i) ->
      let csn = Csn.of_int csn_i in
      let cookie = Protocol.cookie_of ~id ~csn in
      let parses_back =
        match Protocol.parse_cookie cookie with
        | Some (id', csn') -> id' = id && Csn.equal csn' csn
        | None -> false
      in
      let reparents =
        match Protocol.reparent_cookie cookie with
        | None -> false
        | Some foreign -> (
            (* The CSN survives, the session id becomes the reserved
               foreign marker 0, and reparenting is idempotent. *)
            match Protocol.parse_cookie foreign with
            | Some (0, csn') ->
                Csn.equal csn' csn
                && Protocol.reparent_cookie foreign = Some foreign
            | _ -> false)
      in
      parses_back && reparents)

let test_reparent_malformed () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "parse %S" s) true (Protocol.parse_cookie s = None);
      check_bool
        (Printf.sprintf "reparent %S" s)
        true
        (Protocol.reparent_cookie s = None))
    [ ""; "rs"; "rs:"; "rs:1"; "rs:x:2"; "rs:1:y"; "sync:1:2"; "rs:1:2:3" ]

let test_session_ids_never_zero () =
  (* Id 0 is the reserved foreign-session marker of reparented cookies:
     a master minting it would make a reparented consumer look locally
     established. *)
  let b = make_backend () in
  let master = Master.create b in
  for n = 1 to 50 do
    match
      Master.handle master { Protocol.mode = Protocol.Poll; cookie = None }
        (dept_query "7")
    with
    | Ok reply -> (
        match Option.bind reply.Protocol.cookie Protocol.parse_cookie with
        | Some (id, _) ->
            check_bool (Printf.sprintf "session %d id positive" n) true (id > 0)
        | None -> Alcotest.fail "poll reply carried no parseable cookie")
    | Error e -> failwith e
  done;
  check_int "fifty sessions" 50 (Master.session_count master)

let suite =
  [
    Alcotest.test_case "initial content" `Quick test_initial_content;
    Alcotest.test_case "incremental minimal" `Quick test_incremental_minimal;
    Alcotest.test_case "rename within content" `Quick test_rename_within_content;
    Alcotest.test_case "add+delete coalesces" `Quick test_add_then_delete_coalesces;
    Alcotest.test_case "degraded mode" `Quick test_degraded_mode;
    Alcotest.test_case "degraded prunes stale" `Quick test_degraded_prunes_stale;
    Alcotest.test_case "sync_end" `Quick test_sync_end;
    Alcotest.test_case "persist push" `Quick test_persist_push;
    Alcotest.test_case "persist filters content" `Quick test_persist_filters_out_of_content;
    Alcotest.test_case "attribute selection" `Quick test_attribute_selection_in_actions;
    Alcotest.test_case "malformed cookie" `Quick test_malformed_cookie;
    Alcotest.test_case "reparent malformed" `Quick test_reparent_malformed;
    Alcotest.test_case "session ids never zero" `Quick test_session_ids_never_zero;
    QCheck_alcotest.to_alcotest prop_reparent_cookie_roundtrip;
    Alcotest.test_case "session history exact" `Quick test_session_history_exact;
    Alcotest.test_case "changelog conservative" `Quick test_changelog_conservative;
    Alcotest.test_case "tombstone conservative" `Quick test_tombstone_conservative;
    Alcotest.test_case "history sizes" `Quick test_history_sizes;
    Alcotest.test_case "changelog trim degrades" `Quick test_changelog_trim_degrades;
    Alcotest.test_case "dropped reply recovers" `Quick test_dropped_reply_recovers;
    Alcotest.test_case "expired session resumes" `Quick test_expired_session_resumes;
    Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
    Alcotest.test_case "persist reconnect" `Quick test_persist_reconnect;
    Alcotest.test_case "ensure_persist noop" `Quick test_ensure_persist_noop_when_alive;
    Alcotest.test_case "tombstone gc" `Quick test_tombstone_gc;
    Alcotest.test_case "persist advances csn" `Quick test_persist_advances_synced_csn;
    QCheck_alcotest.to_alcotest prop_convergence;
    QCheck_alcotest.to_alcotest prop_convergence_changelog;
  ]
