(* Tests for the compiled hot paths: the interning/buffer substrate in
   lib/compile, the bytecode filter evaluator against the interpreted
   oracle, staged containment conditions, and zero-copy DER encoding
   with buffer reuse. *)

open Ldap
module Compile = Ldap_compile
module C = Ldap_containment

let check_bool = Alcotest.(check bool)
let schema = Schema.default

(* --- Interning and buffers -------------------------------------------- *)

let test_attr_id () =
  let a = Compile.Attr_id.intern "cn" in
  let b = Compile.Attr_id.intern "cn" in
  check_bool "interning is stable" true (Compile.Attr_id.equal a b);
  Alcotest.(check string) "name round-trips" "cn" (Compile.Attr_id.name a);
  let c = Compile.Attr_id.intern "sn" in
  check_bool "distinct names, distinct ids" false (Compile.Attr_id.equal a c);
  check_bool "interned finds existing" true
    (match Compile.Attr_id.interned "cn" with
    | Some x -> Compile.Attr_id.equal x a
    | None -> false)

let test_wbuf () =
  let w = Compile.Wbuf.create ~capacity:4 () in
  Compile.Wbuf.prepend_string w "world";
  Compile.Wbuf.prepend_char w ' ';
  Compile.Wbuf.prepend_string w "hello";
  Alcotest.(check string) "prepends read forwards" "hello world"
    (Compile.Wbuf.contents w);
  Alcotest.(check int) "length" 11 (Compile.Wbuf.length w);
  let bytes, off, len = Compile.Wbuf.view w in
  Alcotest.(check string) "view exposes live region" "hello world"
    (Bytes.sub_string bytes off len);
  let m = Compile.Wbuf.mark w in
  Compile.Wbuf.prepend_string w "> ";
  Alcotest.(check int) "since measures the new bytes" 2 (Compile.Wbuf.since w m);
  Compile.Wbuf.clear w;
  Alcotest.(check int) "clear empties" 0 (Compile.Wbuf.length w);
  Compile.Wbuf.prepend_string w "x";
  Alcotest.(check string) "reused after clear" "x" (Compile.Wbuf.contents w)

(* --- Compiled entry views --------------------------------------------- *)

let test_entry_compiled_memo () =
  let e =
    Entry.make (Dn.of_string_exn "cn=a,o=xyz")
      [ ("cn", [ "A" ]); ("age", [ "007" ]) ]
  in
  let c1 = Entry.compiled schema e in
  let c2 = Entry.compiled schema e in
  check_bool "compiled view is memoized" true (c1 == c2);
  (match Compile.Prog.find_slot c1 (Compile.Attr_id.intern "age") with
  | Some s ->
      Alcotest.(check (array string)) "integer canonical precomputed" [| "7" |]
        s.Compile.Prog.canon;
      check_bool "integer pre-parsed" true (s.Compile.Prog.ints = [| Some 7 |])
  | None -> Alcotest.fail "age slot missing");
  let e2 = Entry.replace_values e "cn" [ "b" ] in
  check_bool "mutation yields a fresh view" false (Entry.compiled schema e2 == c1)

let test_cached_hash () =
  let e = Entry.make (Dn.of_string_exn "cn=a,o=xyz") [ ("cn", [ "a" ]) ] in
  let calls = ref 0 in
  let compute _ =
    incr calls;
    42L
  in
  let h1 = Entry.cached_hash e ~compute in
  let h2 = Entry.cached_hash e ~compute in
  check_bool "hash stable" true (Int64.equal h1 h2);
  Alcotest.(check int) "computed once" 1 !calls;
  let e2 = Entry.add_values e "mail" [ "m@x" ] in
  ignore (Entry.cached_hash e2 ~compute : int64);
  Alcotest.(check int) "recomputed after mutation" 2 !calls

(* --- Bytecode filter evaluation = interpreted oracle ------------------- *)

(* Random schemas vary the matching syntax of two dedicated attributes;
   the rest of the pool exercises the default schema's mix (cn/sn
   case-ignore, age integer, uid undeclared). *)
let syntax_gen =
  QCheck.Gen.oneofl
    [ Value.Case_ignore; Value.Case_exact; Value.Integer; Value.Telephone ]

let schema_of sa sb =
  Schema.add_attribute
    (Schema.add_attribute Schema.default
       {
         Schema.at_name = "xa";
         at_aliases = [];
         at_syntax = sa;
         at_single_value = false;
       })
    {
      Schema.at_name = "xb";
      at_aliases = [];
      at_syntax = sb;
      at_single_value = false;
    }

let attr_pool = [ "cn"; "sn"; "age"; "xa"; "xb"; "uid" ]

let value_gen =
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:(char_range 'a' 'z') (1 -- 4);
        map string_of_int (int_range (-30) 130);
        oneofl [ "Doe"; " padded "; "0042"; "42" ];
      ])

let filter_gen =
  let open QCheck.Gen in
  let attr = oneofl attr_pool in
  let pred =
    oneof
      [
        map2 (fun a v -> Filter.Equality (a, v)) attr value_gen;
        map2 (fun a v -> Filter.Greater_eq (a, v)) attr value_gen;
        map2 (fun a v -> Filter.Less_eq (a, v)) attr value_gen;
        map2 (fun a v -> Filter.Approx (a, v)) attr value_gen;
        map (fun a -> Filter.Present a) attr;
        map2
          (fun a (i, any, f) -> Filter.Substrings (a, { Filter.initial = i; any; final = f }))
          attr
          (oneof
             [
               map (fun v -> (Some v, [], None)) value_gen;
               map (fun v -> (None, [], Some v)) value_gen;
               map2 (fun a b -> (Some a, [], Some b)) value_gen value_gen;
               map2 (fun a b -> (None, [ a ], Some b)) value_gen value_gen;
             ]);
      ]
  in
  let rec tree depth =
    if depth = 0 then map (fun p -> Filter.Pred p) pred
    else
      frequency
        [
          (3, map (fun p -> Filter.Pred p) pred);
          (1, map (fun g -> Filter.Not g) (tree (depth - 1)));
          (1, map (fun gs -> Filter.And gs) (list_size (1 -- 3) (tree (depth - 1))));
          (1, map (fun gs -> Filter.Or gs) (list_size (1 -- 3) (tree (depth - 1))));
        ]
  in
  tree 3

let entry_gen =
  QCheck.Gen.(
    let* attrs =
      list_size (0 -- 5)
        (pair (oneofl attr_pool) (list_size (1 -- 3) value_gen))
    in
    let attrs = List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) attrs in
    return (Entry.make (Dn.of_string_exn "cn=p,o=xyz") attrs))

let case_gen =
  QCheck.Gen.(
    let* sa = syntax_gen in
    let* sb = syntax_gen in
    let* f = filter_gen in
    let* e = entry_gen in
    return (schema_of sa sb, f, e))

let print_case (_, f, e) =
  Printf.sprintf "%s on %s" (Filter.to_string f) (Format.asprintf "%a" Entry.pp e)

let prop_compiled_matches =
  QCheck.Test.make ~name:"compile: bytecode matches = interpreted matches"
    ~count:1000
    (QCheck.make ~print:print_case case_gen)
    (fun (schema, f, e) ->
      Bool.equal (Filter.matcher schema f e) (Filter.matches schema f e))

(* --- Staged containment conditions ------------------------------------ *)

let templates =
  [
    ("(serialnumber=_)", 1);
    ("(serialnumber=_*)", 1);
    ("(age=_)", 1);
    ("(age>=_)", 1);
    ("(age<=_)", 1);
    ("(&(departmentnumber=_)(divisionnumber=_))", 2);
    ("(&(divisionnumber=_)(departmentnumber=*))", 1);
    ("(sn=*)", 0);
  ]

let hole_gen = QCheck.Gen.(oneofl [ "1"; "2"; "24"; "2406"; "25"; "9" ])

let instance_gen =
  QCheck.Gen.(
    let* ti = int_bound (List.length templates - 1) in
    let tmpl, arity = List.nth templates ti in
    let* values = array_repeat arity hole_gen in
    return (tmpl, values))

let prop_staged_symbolic =
  QCheck.Test.make ~name:"compile: staged condition = Symbolic.eval" ~count:800
    (QCheck.make
       ~print:(fun ((lt, lv), (rt, rv)) ->
         Printf.sprintf "%s%s in %s%s" lt
           (String.concat "," (Array.to_list lv))
           rt
           (String.concat "," (Array.to_list rv)))
       QCheck.Gen.(pair instance_gen instance_gen))
    (fun ((lt, lv), (rt, rv)) ->
      let left = C.Template.of_string_exn lt
      and right = C.Template.of_string_exn rt in
      match C.Symbolic.compile schema ~left ~right with
      | None -> true
      | Some cond ->
          let staged = C.Symbolic.Compiled.compile schema cond in
          Bool.equal
            (C.Symbolic.Compiled.eval staged ~left:lv ~right:rv)
            (C.Symbolic.eval schema cond ~left:lv ~right:rv))

(* --- Zero-copy DER encoding with buffer reuse -------------------------- *)

let prop_codec_reuse =
  QCheck.Test.make ~name:"compile: writer encode reuses its buffer" ~count:300
    (QCheck.make
       ~print:(fun e -> Format.asprintf "%a" Entry.pp e)
       entry_gen)
    (fun e ->
      let msg = Ber_codec.entry_message e in
      let w = Compile.Wbuf.create ~capacity:8 () in
      Ber_codec.encode_to w msg;
      let first = Compile.Wbuf.contents w in
      Compile.Wbuf.clear w;
      Ber_codec.encode_to w msg;
      let second = Compile.Wbuf.contents w in
      String.equal first second
      && String.equal first (Ber_codec.encode msg)
      &&
      match Ber_codec.decode first with
      | Ok { Ber_codec.op = Ber_codec.Search_result_entry e'; _ } ->
          Entry.equal e e'
      | _ -> false)

let suite =
  [
    Alcotest.test_case "attr interning" `Quick test_attr_id;
    Alcotest.test_case "wbuf prepend/reuse" `Quick test_wbuf;
    Alcotest.test_case "entry compiled memo" `Quick test_entry_compiled_memo;
    Alcotest.test_case "entry cached hash" `Quick test_cached_hash;
    QCheck_alcotest.to_alcotest prop_compiled_matches;
    QCheck_alcotest.to_alcotest prop_staged_symbolic;
    QCheck_alcotest.to_alcotest prop_codec_reuse;
  ]
