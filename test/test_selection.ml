(* Tests for filter generalization, candidate statistics and the
   benefit/size selector (section 6). *)
open Ldap
module Resync = Ldap_resync
module R = Ldap_replication
module S = Ldap_selection

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn
let must = function Ok x -> x | Error e -> failwith e

let q ?(scope = Scope.Sub) base filter = Query.make ~scope ~base:(dn base) (f filter)

(* --- Generalization ---------------------------------------------------- *)

let prefix_rule = S.Generalize.Prefix_value { attr = "serialnumber"; keep = 2 }
let presence_rule = S.Generalize.Widen_to_presence { attr = "departmentnumber" }

let test_prefix_generalization () =
  (match S.Generalize.generalize_filter prefix_rule (f "(serialNumber=2406)") with
  | Some g -> check_bool "prefix" true (Filter.equal g (f "(serialNumber=24*)"))
  | None -> Alcotest.fail "expected generalization");
  check_bool "short value unchanged" true
    (S.Generalize.generalize_filter prefix_rule (f "(serialNumber=24)") = None);
  check_bool "other attr unchanged" true
    (S.Generalize.generalize_filter prefix_rule (f "(mail=2406)") = None)

let test_presence_generalization () =
  (match
     S.Generalize.generalize_filter presence_rule
       (f "(&(divisionNumber=24)(departmentNumber=2406))")
   with
  | Some g ->
      check_bool "widened" true
        (Filter.equal g (f "(&(divisionNumber=24)(departmentNumber=*))"))
  | None -> Alcotest.fail "expected generalization");
  (* Outside a conjunction the rule must not fire (it would match the
     whole directory). *)
  check_bool "bare equality untouched" true
    (S.Generalize.generalize_filter presence_rule (f "(departmentNumber=2406)") = None)

let test_candidates_contain_query () =
  let query = q "o=xyz" "(&(divisionNumber=24)(departmentNumber=2406))" in
  let cands =
    S.Generalize.candidates
      [ presence_rule; S.Generalize.Prefix_value { attr = "departmentnumber"; keep = 2 } ]
      query
  in
  check_int "two candidates" 2 (List.length cands);
  List.iter
    (fun c ->
      check_bool "candidate contains query" true
        (Ldap_containment.Query_containment.contained schema ~query ~stored:c))
    cands

(* --- Candidate statistics ---------------------------------------------- *)

let test_candidate_stats () =
  let t = S.Candidate.create () in
  let a = q "o=xyz" "(serialNumber=24*)" in
  let b = q "o=xyz" "(serialNumber=25*)" in
  S.Candidate.observe t a;
  S.Candidate.observe t a;
  S.Candidate.observe t b;
  check_int "count" 2 (S.Candidate.count t);
  let estimate _ = 10 in
  let ranked = S.Candidate.ranked t ~estimate in
  (match ranked with
  | (first, stats, ratio) :: _ ->
      check_bool "best first" true (Query.equal first a);
      check_int "hits" 2 stats.S.Candidate.hits;
      check_bool "ratio" true (abs_float (ratio -. 0.2) < 1e-9)
  | [] -> Alcotest.fail "expected ranking");
  check_int "size cached" 10 (S.Candidate.size_of t a ~estimate:(fun _ -> 99));
  S.Candidate.reset_hits t;
  let ranked = S.Candidate.ranked t ~estimate in
  check_bool "reset" true (List.for_all (fun (_, s, _) -> s.S.Candidate.hits = 0) ranked)

let test_invalidate_sizes () =
  let t = S.Candidate.create () in
  let a = q "o=xyz" "(serialNumber=24*)" in
  S.Candidate.observe t a;
  check_int "first estimate cached" 10 (S.Candidate.size_of t a ~estimate:(fun _ -> 10));
  (* Without invalidation the stale price sticks — the regression that
     let a revolution keep ranking candidates at day-one sizes. *)
  check_int "stale until invalidated" 10 (S.Candidate.size_of t a ~estimate:(fun _ -> 50));
  S.Candidate.invalidate_sizes t;
  check_int "re-asked after invalidation" 50
    (S.Candidate.size_of t a ~estimate:(fun _ -> 50));
  (match S.Candidate.ranked t ~estimate:(fun _ -> 99) with
  | [ (_, _, ratio) ] ->
      check_bool "ranking uses refreshed size" true
        (abs_float (ratio -. (1.0 /. 50.0)) < 1e-9)
  | _ -> Alcotest.fail "expected one candidate");
  ()

(* --- Selector ----------------------------------------------------------- *)

let make_master_with_depts () =
  let b = Backend.create ~indexed:[ "departmentnumber"; "divisionnumber" ] schema in
  must
    (Backend.add_context b
       (Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]));
  let apply op = ignore (must (Backend.apply b op)) in
  for d = 0 to 1 do
    let div_dn = dn (Printf.sprintf "ou=div-%02d,o=xyz" d) in
    apply
      (Update.Add
         (Entry.make div_dn
            [ ("objectclass", [ "organizationalUnit" ]); ("ou", [ Printf.sprintf "div-%02d" d ]) ]));
    for k = 0 to 9 do
      let number = Printf.sprintf "%02d%02d" d k in
      apply
        (Update.Add
           (Entry.make
              (Dn.child_ava div_dn "ou" ("dept-" ^ number))
              [
                ("objectclass", [ "organizationalUnit" ]);
                ("ou", [ "dept-" ^ number ]);
                ("departmentNumber", [ number ]);
                ("divisionNumber", [ Printf.sprintf "%02d" d ]);
              ]))
    done
  done;
  (b, Resync.Master.create b)

let dept_query number =
  q "o=xyz"
    (Printf.sprintf "(&(departmentNumber=%s)(divisionNumber=%s))" number
       (String.sub number 0 2))

let selector_config ?(interval = 10) ?(budget = 5) () =
  {
    S.Selector.rules = [];
    revolution_interval = interval;
    size_budget = budget;
    min_hits = 1;
    include_queries = true;
  }

let test_selector_revolution () =
  let _, master = make_master_with_depts () in
  let replica = R.Filter_replica.create master in
  let selector = S.Selector.create (selector_config ()) replica in
  (* Nine hot queries for dept 0001, one for 0002 -> budget 5 admits both,
     best first. *)
  for _ = 1 to 9 do
    S.Selector.observe selector (dept_query "0001")
  done;
  S.Selector.observe selector (dept_query "0002");
  check_int "one revolution" 1 (S.Selector.revolutions selector);
  let stored = R.Filter_replica.stored_filters replica in
  check_bool "hot dept stored" true
    (List.exists (fun s -> Query.equal s (dept_query "0001")) stored);
  (* The replica now answers the hot department locally. *)
  match R.Filter_replica.answer replica (dept_query "0001") with
  | R.Replica.Answered [ _ ] -> ()
  | _ -> Alcotest.fail "expected hit after revolution"

let test_selector_budget () =
  let _, master = make_master_with_depts () in
  let replica = R.Filter_replica.create master in
  let selector = S.Selector.create (selector_config ~interval:100 ~budget:3 ()) replica in
  for k = 0 to 9 do
    for _ = 1 to 10 - k do
      S.Selector.observe selector (dept_query (Printf.sprintf "00%02d" k))
    done
  done;
  S.Selector.force_revolution selector;
  check_bool "budget respected" true
    (R.Filter_replica.size_entries replica <= 3);
  check_int "three filters of size one" 3
    (List.length (R.Filter_replica.stored_filters replica))

let test_selector_adapts () =
  let _, master = make_master_with_depts () in
  let replica = R.Filter_replica.create master in
  let selector = S.Selector.create (selector_config ~interval:20 ~budget:1 ()) replica in
  (* Phase 1: dept 0003 is hot. *)
  for _ = 1 to 20 do
    S.Selector.observe selector (dept_query "0003")
  done;
  check_bool "phase 1 stored" true
    (List.exists
       (fun s -> Query.equal s (dept_query "0003"))
       (R.Filter_replica.stored_filters replica));
  (* Phase 2: popularity shifts to dept 0107. *)
  for _ = 1 to 20 do
    S.Selector.observe selector (dept_query "0107")
  done;
  let stored = R.Filter_replica.stored_filters replica in
  check_bool "phase 2 stored" true
    (List.exists (fun s -> Query.equal s (dept_query "0107")) stored);
  check_bool "old evicted" false
    (List.exists (fun s -> Query.equal s (dept_query "0003")) stored)

let test_install_static () =
  let _, master = make_master_with_depts () in
  let replica = R.Filter_replica.create master in
  must (S.Selector.install_static replica [ dept_query "0001"; dept_query "0102" ]);
  check_int "two installed" 2 (List.length (R.Filter_replica.stored_filters replica))

(* --- Evolution baseline -------------------------------------------------- *)

let test_evolution_reacts_immediately () =
  let _, master = make_master_with_depts () in
  let replica = R.Filter_replica.create master in
  let rules = [ S.Generalize.Prefix_value { attr = "departmentnumber"; keep = 2 } ] in
  let config =
    { S.Evolution_baseline.rules; size_budget = 25; ageing = 0.95; swap_margin = 0.1;
      include_queries = true }
  in
  let evo = S.Evolution_baseline.create config replica in
  for _ = 1 to 5 do
    S.Evolution_baseline.observe evo (dept_query "0001")
  done;
  (* Unlike periodic revolutions, evolutions install candidates
     immediately - swaps happen within the first few queries. *)
  check_bool "swapped early" true (S.Evolution_baseline.swaps evo >= 1);
  check_bool "stored something" true
    (List.length (R.Filter_replica.stored_filters replica) >= 1)

let suite =
  [
    Alcotest.test_case "prefix generalization" `Quick test_prefix_generalization;
    Alcotest.test_case "presence generalization" `Quick test_presence_generalization;
    Alcotest.test_case "candidates contain query" `Quick test_candidates_contain_query;
    Alcotest.test_case "candidate stats" `Quick test_candidate_stats;
    Alcotest.test_case "invalidate sizes" `Quick test_invalidate_sizes;
    Alcotest.test_case "selector revolution" `Quick test_selector_revolution;
    Alcotest.test_case "selector budget" `Quick test_selector_budget;
    Alcotest.test_case "selector adapts" `Quick test_selector_adapts;
    Alcotest.test_case "install static" `Quick test_install_static;
    Alcotest.test_case "evolution reacts immediately" `Quick test_evolution_reacts_immediately;
  ]
