(* Tests for the replication layer: subtree replica (isContained),
   filter replica (containment answerability, caching, sync) and the
   query-cache window. *)
open Ldap
module Resync = Ldap_resync
module R = Ldap_replication

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn
let must = function Ok x -> x | Error e -> failwith e

let person name parent serial dept =
  Entry.make
    (dn (Printf.sprintf "cn=%s,%s" name parent))
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ name ]); ("sn", [ name ]);
      ("serialNumber", [ serial ]);
      ("departmentNumber", [ dept ]);
    ]

(* Master: o=xyz with two country subtrees plus a research ou. *)
let make_master () =
  let b = Backend.create ~indexed:[ "serialnumber"; "departmentnumber" ] schema in
  must
    (Backend.add_context b
       (Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]));
  let apply op = ignore (must (Backend.apply b op)) in
  apply (Update.add (Entry.make (dn "c=us,o=xyz") [ ("objectclass", [ "country" ]); ("c", [ "us" ]) ]));
  apply (Update.add (Entry.make (dn "c=in,o=xyz") [ ("objectclass", [ "country" ]); ("c", [ "in" ]) ]));
  apply (Update.add (person "alice" "c=us,o=xyz" "0100001" "7"));
  apply (Update.add (person "bob" "c=us,o=xyz" "0100002" "7"));
  apply (Update.add (person "chen" "c=in,o=xyz" "0200001" "8"));
  apply (Update.add (person "dara" "c=in,o=xyz" "0200002" "9"));
  (b, Resync.Master.create b)

let q ?(scope = Scope.Sub) base filter = Query.make ~scope ~base:(dn base) (f filter)

(* --- Subtree replica -------------------------------------------------- *)

let test_subtree_is_contained () =
  let _, master = make_master () in
  let replica = R.Subtree_replica.create master ~subtrees:[ dn "c=us,o=xyz" ] in
  check_bool "inside" true (R.Subtree_replica.is_contained replica (dn "cn=alice,c=us,o=xyz"));
  check_bool "suffix itself" true (R.Subtree_replica.is_contained replica (dn "c=us,o=xyz"));
  check_bool "other country" false (R.Subtree_replica.is_contained replica (dn "cn=chen,c=in,o=xyz"));
  check_bool "root" false (R.Subtree_replica.is_contained replica (dn "o=xyz"))

let test_subtree_answer () =
  let _, master = make_master () in
  let replica = R.Subtree_replica.create master ~subtrees:[ dn "c=us,o=xyz" ] in
  (match R.Subtree_replica.answer replica (q "c=us,o=xyz" "(serialNumber=0100001)") with
  | R.Replica.Answered [ e ] -> check_bool "entry" true (Entry.has_value e "cn" "alice")
  | _ -> Alcotest.fail "expected one entry");
  (* Root-based queries are misses: the base is not held (section 3.1.1). *)
  (match R.Subtree_replica.answer replica (q "o=xyz" "(serialNumber=0100001)") with
  | R.Replica.Referral -> ()
  | _ -> Alcotest.fail "expected referral for root-based query");
  let stats = R.Subtree_replica.stats replica in
  check_int "queries" 2 stats.R.Stats.queries;
  check_int "hits" 1 stats.R.Stats.hits

let test_subtree_partial_referral () =
  (* A replicated subtree containing a referral object cannot fully
     answer queries whose scope touches it (section 3.1.3). *)
  let b = Backend.create schema in
  must
    (Backend.add_context b
       (Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]));
  let apply op = ignore (must (Backend.apply b op)) in
  apply (Update.add (Entry.make (dn "c=us,o=xyz") [ ("objectclass", [ "country" ]); ("c", [ "us" ]) ]));
  apply (Update.add (person "alice" "c=us,o=xyz" "1" "7"));
  apply
    (Update.add
       (Entry.make (dn "ou=research,c=us,o=xyz")
          [ ("objectclass", [ "referral" ]); ("ref", [ "ldap://hostB/ou=research,c=us,o=xyz" ]) ]));
  let master = Resync.Master.create b in
  let replica = R.Subtree_replica.create master ~subtrees:[ dn "c=us,o=xyz" ] in
  (* Base under the referral: not contained. *)
  check_bool "under referral" false
    (R.Subtree_replica.is_contained replica (dn "cn=x,ou=research,c=us,o=xyz"));
  (* Subtree query over the context generates a referral (partial). *)
  (match R.Subtree_replica.answer replica (q "c=us,o=xyz" "(objectclass=*)") with
  | R.Replica.Referral -> ()
  | _ -> Alcotest.fail "expected partial-answer referral");
  (* A base-scoped query above the referral is fine. *)
  match R.Subtree_replica.answer replica (q ~scope:Scope.Base "cn=alice,c=us,o=xyz" "(objectclass=*)") with
  | R.Replica.Answered [ _ ] -> ()
  | _ -> Alcotest.fail "expected base answer"

let test_subtree_sync () =
  let b, master = make_master () in
  let replica = R.Subtree_replica.create master ~subtrees:[ dn "c=us,o=xyz" ] in
  check_int "initial size" 3 (R.Subtree_replica.size_entries replica);
  ignore (must (Backend.apply b (Update.add (person "eve" "c=us,o=xyz" "0100003" "7"))));
  ignore (must (Backend.apply b (Update.add (person "farah" "c=in,o=xyz" "0200003" "8"))));
  R.Subtree_replica.sync replica;
  check_int "us change arrived, in change did not" 4 (R.Subtree_replica.size_entries replica);
  match R.Subtree_replica.answer replica (q "c=us,o=xyz" "(serialNumber=0100003)") with
  | R.Replica.Answered [ _ ] -> ()
  | _ -> Alcotest.fail "expected synced entry"

(* --- Filter replica ---------------------------------------------------- *)

let test_filter_replica_containment_answer () =
  let _, master = make_master () in
  let replica = R.Filter_replica.create master in
  must (R.Filter_replica.install_filter replica (q "o=xyz" "(serialNumber=01*)"));
  check_int "entries" 2 (R.Filter_replica.size_entries replica);
  (* Exact containment across templates: equality inside prefix. *)
  (match R.Filter_replica.answer replica (q "o=xyz" "(serialNumber=0100002)") with
  | R.Replica.Answered [ e ] -> check_bool "bob" true (Entry.has_value e "cn" "bob")
  | _ -> Alcotest.fail "expected hit");
  (* Narrower base is still contained. *)
  (match R.Filter_replica.answer replica (q "c=us,o=xyz" "(serialNumber=0100001)") with
  | R.Replica.Answered [ _ ] -> ()
  | _ -> Alcotest.fail "expected scoped hit");
  (* Outside the stored filter. *)
  (match R.Filter_replica.answer replica (q "o=xyz" "(serialNumber=0200001)") with
  | R.Replica.Referral -> ()
  | _ -> Alcotest.fail "expected referral");
  let stats = R.Filter_replica.stats replica in
  check_int "hits" 2 stats.R.Stats.hits;
  check_int "queries" 3 stats.R.Stats.queries

let test_filter_replica_no_false_answers () =
  (* A query matching entries outside every stored filter must refer,
     even if some matching entries are held. *)
  let _, master = make_master () in
  let replica = R.Filter_replica.create master in
  must (R.Filter_replica.install_filter replica (q "o=xyz" "(departmentNumber=7)"));
  match R.Filter_replica.answer replica (q "o=xyz" "(serialNumber=0100001)") with
  | R.Replica.Referral -> ()
  | R.Replica.Answered _ ->
      Alcotest.fail "answered a query not contained in any stored filter"

let test_filter_replica_sync_traffic () =
  let b, master = make_master () in
  let replica = R.Filter_replica.create master in
  must (R.Filter_replica.install_filter replica (q "o=xyz" "(departmentNumber=7)"));
  let stats = R.Filter_replica.stats replica in
  check_int "install counted as fetch" 2 stats.R.Stats.fetch_entries;
  ignore
    (must
       (Backend.apply b
          (Update.modify (dn "cn=alice,c=us,o=xyz")
             [ Update.replace_values "telephoneNumber" [ "1" ] ])));
  ignore
    (must
       (Backend.apply b
          (Update.modify (dn "cn=chen,c=in,o=xyz")
             [ Update.replace_values "telephoneNumber" [ "2" ] ])));
  R.Filter_replica.sync replica;
  check_int "only in-content change synced" 1 stats.R.Stats.sync_entries

let test_filter_replica_install_remove () =
  let _, master = make_master () in
  let replica = R.Filter_replica.create master in
  let query = q "o=xyz" "(departmentNumber=7)" in
  must (R.Filter_replica.install_filter replica query);
  must (R.Filter_replica.install_filter replica query);
  check_int "idempotent install" 1 (List.length (R.Filter_replica.stored_filters replica));
  check_int "one session at master" 1 (Resync.Master.session_count master);
  R.Filter_replica.remove_filter replica query;
  check_int "removed" 0 (List.length (R.Filter_replica.stored_filters replica));
  check_int "session ended" 0 (Resync.Master.session_count master)

let test_filter_replica_user_cache () =
  let b, master = make_master () in
  let replica = R.Filter_replica.create ~cache_capacity:2 master in
  let query = q "o=xyz" "(serialNumber=0200001)" in
  (match R.Filter_replica.answer replica query with
  | R.Replica.Referral -> ()
  | _ -> Alcotest.fail "expected initial miss");
  (* The miss is answered by the master and cached. *)
  let result =
    match Backend.search b query with Ok { Backend.entries; _ } -> entries | Error _ -> []
  in
  R.Filter_replica.record_miss_result replica query result;
  (match R.Filter_replica.answer replica query with
  | R.Replica.Answered [ _ ] -> ()
  | _ -> Alcotest.fail "expected cached hit");
  (* Window eviction: two more cached queries push it out. *)
  R.Filter_replica.record_miss_result replica (q "o=xyz" "(serialNumber=0200002)") [];
  R.Filter_replica.record_miss_result replica (q "o=xyz" "(serialNumber=0100001)") [];
  match R.Filter_replica.answer replica query with
  | R.Replica.Referral -> ()
  | _ -> Alcotest.fail "expected eviction"

let test_filter_replica_attrs_respected () =
  (* A stored query projecting a subset of attributes cannot answer an
     all-attributes query (condition (ii) of QC). *)
  let _, master = make_master () in
  let replica = R.Filter_replica.create master in
  let narrow =
    Query.make ~attrs:(Query.Select [ "cn" ]) ~base:(dn "o=xyz") (f "(departmentNumber=7)")
  in
  must (R.Filter_replica.install_filter replica narrow);
  (match R.Filter_replica.answer replica (q "o=xyz" "(departmentNumber=7)") with
  | R.Replica.Referral -> ()
  | _ -> Alcotest.fail "all-attrs query must not be answered from a projection");
  (* The same query restricted to cn is answerable. *)
  let restricted =
    Query.make ~attrs:(Query.Select [ "cn" ]) ~base:(dn "o=xyz") (f "(departmentNumber=7)")
  in
  match R.Filter_replica.answer replica restricted with
  | R.Replica.Answered entries ->
      check_int "entries" 2 (List.length entries);
      List.iter
        (fun e -> check_bool "only cn" false (Entry.has_attribute e "serialnumber"))
        entries
  | _ -> Alcotest.fail "expected projected hit"

let test_subtree_scopes () =
  let _, master = make_master () in
  let replica = R.Subtree_replica.create master ~subtrees:[ dn "c=us,o=xyz" ] in
  (match
     R.Subtree_replica.answer replica
       (q ~scope:Scope.Base "c=us,o=xyz" "(objectclass=country)")
   with
  | R.Replica.Answered [ _ ] -> ()
  | _ -> Alcotest.fail "base scope");
  (match
     R.Subtree_replica.answer replica
       (q ~scope:Scope.One "c=us,o=xyz" "(objectclass=inetOrgPerson)")
   with
  | R.Replica.Answered l -> check_int "one-level children" 2 (List.length l)
  | _ -> Alcotest.fail "one scope");
  match
    R.Subtree_replica.answer replica (q ~scope:Scope.Base "c=us,o=xyz" "(sn=nobody)")
  with
  | R.Replica.Answered [] -> ()
  | _ -> Alcotest.fail "empty result is still a hit"

let test_filter_replica_rename_chain () =
  (* Rename chains at the master replay safely at the replica. *)
  let b, master = make_master () in
  let replica = R.Filter_replica.create master in
  must (R.Filter_replica.install_filter replica (q "o=xyz" "(departmentNumber=7)"));
  let rdn s = match Dn.rdn_of_string s with Ok r -> r | Error e -> failwith e in
  (* alice -> tmp; bob -> alice: DN reuse within one sync interval. *)
  ignore (must (Backend.apply b (Update.modify_dn (dn "cn=alice,c=us,o=xyz") (rdn "cn=tmp"))));
  ignore (must (Backend.apply b (Update.modify_dn (dn "cn=bob,c=us,o=xyz") (rdn "cn=alice"))));
  R.Filter_replica.sync replica;
  match R.Filter_replica.answer replica (q "o=xyz" "(departmentNumber=7)") with
  | R.Replica.Answered entries ->
      let names =
        List.sort String.compare
          (List.concat_map (fun e -> Entry.get e "cn") entries)
      in
      Alcotest.(check (list string)) "renamed population" [ "alice"; "tmp" ] names
  | _ -> Alcotest.fail "expected hit"

(* --- Query cache -------------------------------------------------------- *)

let test_query_cache_containment () =
  let cache = R.Query_cache.create schema ~capacity:4 in
  let block = q "o=xyz" "(serialNumber=01*)" in
  let entries = [ Entry.make (dn "cn=a,c=us,o=xyz") [ ("objectclass", [ "person" ]); ("cn", [ "a" ]); ("sn", [ "a" ]); ("serialNumber", [ "0100009" ]) ] ] in
  R.Query_cache.add cache block entries;
  (match R.Query_cache.answer cache (q "o=xyz" "(serialNumber=0100009)") with
  | Some [ _ ] -> ()
  | Some l -> Alcotest.failf "expected 1, got %d" (List.length l)
  | None -> Alcotest.fail "expected contained answer");
  (* Contained query returning no entries is still a (negative) hit. *)
  (match R.Query_cache.answer cache (q "o=xyz" "(serialNumber=0100123)") with
  | Some [] -> ()
  | _ -> Alcotest.fail "expected empty contained answer");
  check_bool "uncontained misses" true
    (R.Query_cache.answer cache (q "o=xyz" "(serialNumber=0200001)") = None)

let test_query_cache_window () =
  let cache = R.Query_cache.create schema ~capacity:2 in
  let mk i = q "o=xyz" (Printf.sprintf "(serialNumber=%07d)" i) in
  R.Query_cache.add cache (mk 1) [];
  R.Query_cache.add cache (mk 2) [];
  R.Query_cache.add cache (mk 3) [];
  check_int "capacity respected" 2 (R.Query_cache.length cache);
  check_bool "oldest evicted" true (R.Query_cache.answer cache (mk 1) = None);
  check_bool "newest present" true (R.Query_cache.answer cache (mk 3) <> None);
  (* Re-adding refreshes position. *)
  R.Query_cache.add cache (mk 2) [];
  R.Query_cache.add cache (mk 4) [];
  check_bool "refreshed survives" true (R.Query_cache.answer cache (mk 2) <> None);
  check_bool "stale evicted" true (R.Query_cache.answer cache (mk 3) = None)

let test_query_cache_disabled () =
  let cache = R.Query_cache.create schema ~capacity:0 in
  R.Query_cache.add cache (q "o=xyz" "(a=1)") [];
  check_int "disabled stays empty" 0 (R.Query_cache.length cache);
  check_bool "never answers" true (R.Query_cache.answer cache (q "o=xyz" "(a=1)") = None)

(* Property: the filter replica never returns a wrong answer — any
   answered query returns exactly what the master would. *)
let prop_no_wrong_answers =
  QCheck.Test.make ~name:"filter replica: answers equal master's" ~count:200
    QCheck.(pair (int_range 0 3) (int_range 1 9))
    (fun (prefix_case, serial_digit) ->
      let b, master = make_master () in
      let replica = R.Filter_replica.create master in
      let stored =
        match prefix_case with
        | 0 -> q "o=xyz" "(serialNumber=01*)"
        | 1 -> q "o=xyz" "(serialNumber=02*)"
        | 2 -> q "o=xyz" "(departmentNumber=7)"
        | _ -> q "c=us,o=xyz" "(objectclass=*)"
      in
      (match R.Filter_replica.install_filter replica stored with
      | Ok () -> ()
      | Error e -> failwith e);
      let query = q "o=xyz" (Printf.sprintf "(serialNumber=0%d0000%d)" (1 + (serial_digit mod 2)) (serial_digit mod 4)) in
      match R.Filter_replica.answer replica query with
      | R.Replica.Referral -> true
      | R.Replica.Answered entries ->
          let expected =
            match Backend.search b query with
            | Ok { Backend.entries; _ } -> entries
            | Error _ -> []
          in
          let dns l = List.sort compare (List.map (fun e -> Dn.canonical (Entry.dn e)) l) in
          dns entries = dns expected)

let test_filter_replica_lossy_transport () =
  (* The acceptance scenario: a filter replica syncing over a faulty
     link — dropped replies, dropped requests, a forced session expiry
     — converges to the master's content, and the recovery work shows
     up in its stats. *)
  let b, master = make_master () in
  let apply op = ignore (must (Backend.apply b op)) in
  let net = Network.create () in
  let faults = Network.Faults.create () in
  let transport = Resync.Transport.create ~faults net in
  Resync.Transport.add_master transport ~name:"hq" master;
  let replica = R.Filter_replica.create_over transport ~master_host:"hq" in
  let stored = q "o=xyz" "(departmentNumber=7)" in
  must (R.Filter_replica.install_filter replica stored);
  check_int "initial content" 2 (R.Filter_replica.size_entries replica);
  (* Round 1: the poll's reply is lost after the master processed it. *)
  apply (Update.add (person "eve" "c=us,o=xyz" "0100003" "7"));
  Network.Faults.script faults [ Network.Faults.Drop_reply ];
  R.Filter_replica.sync replica;
  (* Round 2: the master expires every session mid-stream. *)
  apply (Update.modify (dn "cn=bob,c=us,o=xyz")
           [ Update.replace_values "departmentNumber" [ "8" ] ]);
  Resync.Master.expire_sessions master ~idle_limit:0;
  R.Filter_replica.sync replica;
  (* Round 3: a poll abandoned after four dropped requests leaves the
     replica stale but intact; the next round catches up. *)
  apply (Update.add (person "finn" "c=us,o=xyz" "0100004" "7"));
  Network.Faults.script faults
    [
      Network.Faults.Drop_request; Network.Faults.Drop_request;
      Network.Faults.Drop_request; Network.Faults.Drop_request;
    ];
  R.Filter_replica.sync replica;
  check_int "stale after exhaustion" 2 (R.Filter_replica.size_entries replica);
  R.Filter_replica.sync replica;
  (* Converged: alice, eve, finn (bob moved out). *)
  check_int "converged" 3 (R.Filter_replica.size_entries replica);
  (match R.Filter_replica.answer replica stored with
  | R.Replica.Answered entries -> check_int "answers current content" 3 (List.length entries)
  | R.Replica.Referral -> Alcotest.fail "expected local answer");
  let stats = R.Filter_replica.stats replica in
  check_bool "retries recorded" true (stats.R.Stats.sync_retries >= 1);
  check_int "resyncs recorded" 2 stats.R.Stats.resyncs;
  check_bool "recovery bytes recorded" true (stats.R.Stats.recovery_bytes > 0);
  check_int "exhaustion recorded" 1 stats.R.Stats.sync_failures;
  check_bool "backoff ticks recorded" true (stats.R.Stats.sync_backoff_ticks >= 1)

let suite =
  [
    Alcotest.test_case "subtree isContained" `Quick test_subtree_is_contained;
    Alcotest.test_case "subtree answer" `Quick test_subtree_answer;
    Alcotest.test_case "subtree partial referral" `Quick test_subtree_partial_referral;
    Alcotest.test_case "subtree sync" `Quick test_subtree_sync;
    Alcotest.test_case "filter containment answer" `Quick test_filter_replica_containment_answer;
    Alcotest.test_case "filter no false answers" `Quick test_filter_replica_no_false_answers;
    Alcotest.test_case "filter sync traffic" `Quick test_filter_replica_sync_traffic;
    Alcotest.test_case "filter install/remove" `Quick test_filter_replica_install_remove;
    Alcotest.test_case "filter user cache" `Quick test_filter_replica_user_cache;
    Alcotest.test_case "filter attrs respected" `Quick test_filter_replica_attrs_respected;
    Alcotest.test_case "subtree scopes" `Quick test_subtree_scopes;
    Alcotest.test_case "filter rename chain" `Quick test_filter_replica_rename_chain;
    Alcotest.test_case "query cache containment" `Quick test_query_cache_containment;
    Alcotest.test_case "query cache window" `Quick test_query_cache_window;
    Alcotest.test_case "query cache disabled" `Quick test_query_cache_disabled;
    Alcotest.test_case "filter replica lossy transport" `Quick
      test_filter_replica_lossy_transport;
    QCheck_alcotest.to_alcotest prop_no_wrong_answers;
  ]
