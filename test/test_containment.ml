(* Tests for the containment engine: Propositions 1-3, templates, QC,
   and the template-bucketed index — including a brute-force oracle. *)
open Ldap
open Ldap_containment

let schema = Schema.default
let f = Filter.of_string_exn
let check_bool = Alcotest.(check bool)

let contained a b = Filter_containment.contained schema (f a) (f b)

let test_reflexive () =
  List.iter
    (fun s -> check_bool s true (contained s s))
    [ "(cn=a)"; "(&(sn=doe)(givenname=john))"; "(age>=3)"; "(sn=smi*)"; "(objectclass=*)" ]

let test_equality_cases () =
  check_bool "eq in eq (same)" true (contained "(cn=a)" "(cn=a)");
  check_bool "eq in eq (diff)" false (contained "(cn=a)" "(cn=b)");
  check_bool "eq in present" true (contained "(cn=a)" "(cn=*)");
  check_bool "present in eq" false (contained "(cn=*)" "(cn=a)");
  check_bool "different attr" false (contained "(cn=a)" "(sn=a)")

let test_range_cases () =
  (* Paper: (age=X) is answered by (age>=Y) if Y <= X. *)
  check_bool "eq in ge (inside)" true (contained "(age=30)" "(age>=20)");
  check_bool "eq in ge (boundary)" true (contained "(age=20)" "(age>=20)");
  check_bool "eq in ge (outside)" false (contained "(age=10)" "(age>=20)");
  check_bool "eq in le" true (contained "(age=10)" "(age<=20)");
  check_bool "ge in ge" true (contained "(age>=30)" "(age>=20)");
  check_bool "ge in ge (reverse)" false (contained "(age>=20)" "(age>=30)");
  check_bool "le in le" true (contained "(age<=10)" "(age<=20)");
  check_bool "integer compare, not lexicographic" true (contained "(age=9)" "(age>=9)")

let test_substring_cases () =
  check_bool "eq in prefix" true (contained "(sn=smith)" "(sn=smi*)");
  check_bool "eq not in prefix" false (contained "(sn=doe)" "(sn=smi*)");
  check_bool "prefix in shorter prefix" true (contained "(sn=smi*)" "(sn=sm*)");
  check_bool "prefix not in longer prefix" false (contained "(sn=sm*)" "(sn=smi*)");
  check_bool "prefix in present" true (contained "(sn=smi*)" "(sn=*)");
  check_bool "eq in contains" true (contained "(mail=john@xyz.com)" "(mail=*xyz*)");
  check_bool "serialnumber pattern" true (contained "(serialnumber=2406)" "(serialnumber=24*)")

let test_boolean_cases () =
  check_bool "and in part" true (contained "(&(sn=doe)(givenname=john))" "(sn=doe)");
  check_bool "part not in and" false (contained "(sn=doe)" "(&(sn=doe)(givenname=john))");
  check_bool "or in bigger or" true (contained "(cn=a)" "(|(cn=a)(cn=b))");
  check_bool "or branches" true (contained "(|(cn=a)(cn=b))" "(|(cn=a)(cn=b)(cn=c))");
  check_bool "or not contained" false (contained "(|(cn=a)(cn=z))" "(|(cn=a)(cn=b))");
  check_bool "and of ors" true
    (contained "(&(dept=2406)(div=sw))" "(&(dept=24*)(div=sw))");
  check_bool "conjunct strengthens" true
    (contained "(&(age>=30)(age<=40))" "(age>=20)")

let test_negation_cases () =
  check_bool "not in not (flip)" true (contained "(!(age>=20))" "(!(age>=30))");
  check_bool "not in not (wrong flip)" false (contained "(!(age>=30))" "(!(age>=20))");
  (* age is single-valued: (age=1) has no value equal to 2. *)
  check_bool "eq in not-eq different (single-valued)" true
    (contained "(age=1)" "(!(age=2))");
  check_bool "eq in not-eq same" false (contained "(age=1)" "(!(age=1))");
  (* cn is multi-valued: an entry {cn=a, cn=b} satisfies (cn=a) but not
     (!(cn=b)), so containment must NOT hold. *)
  check_bool "eq in not-eq different (multi-valued)" false
    (contained "(cn=a)" "(!(cn=b))");
  (* (age=30) ⊆ (!(age>=40)): age is single-valued so 30 < 40 suffices. *)
  check_bool "single-valued eq in not-ge" true (contained "(age=30)" "(!(age>=40))");
  (* cn is multi-valued: an entry {cn=a, cn=z} satisfies (cn=a) but not
     (!(cn>=x)), so containment must NOT hold. *)
  check_bool "multi-valued eq not in not-ge" false (contained "(cn=a)" "(!(cn>=x))")

let test_unsatisfiable_left () =
  (* An unsatisfiable F1 is contained in everything (single-valued age). *)
  check_bool "empty range" true (contained "(&(age>=30)(age<=20))" "(cn=whatever)");
  check_bool "empty eq pair" true (contained "(&(age=1)(age=2))" "(cn=whatever)");
  (* Multi-valued attribute: (cn=a)&(cn=b) is satisfiable, so not contained. *)
  check_bool "multi-valued not empty" false (contained "(&(cn=a)(cn=b))" "(cn=zzz)")

let test_template_extraction () =
  let t = Template.of_filter (f "(&(sn=doe)(givenname=john))") in
  Alcotest.(check int) "holes" 2 (Template.holes t);
  let t2 = Template.of_filter (f "(&(sn=smith)(givenname=jane))") in
  check_bool "same shape" true (Template.equal t t2);
  let t3 = Template.of_filter (f "(sn=doe)") in
  check_bool "different shape" false (Template.equal t t3)

let test_template_declared () =
  let t = Template.of_string_exn "(&(cn=_)(ou=research))" in
  Alcotest.(check int) "one hole" 1 (Template.holes t);
  (match Template.match_filter schema t (f "(&(cn=john)(ou=research))") with
  | Some [| v |] -> Alcotest.(check string) "bound value" "john" v
  | _ -> Alcotest.fail "expected match");
  check_bool "const mismatch" true
    (Template.match_filter schema t (f "(&(cn=john)(ou=sales))") = None);
  (* Constants compare under the matching rule. *)
  check_bool "const case-insensitive" true
    (Template.match_filter schema t (f "(&(cn=john)(ou=Research))") <> None)

let test_template_instantiate () =
  let t = Template.of_string_exn "(serialnumber=_)" in
  match Template.instantiate t [| "0456" |] with
  | Ok fl -> check_bool "instance" true (Filter.equal fl (f "(serialnumber=0456)"))
  | Error e -> Alcotest.fail e

let test_cross_template_compile () =
  let left = Template.of_string_exn "(age=_)" in
  let right = Template.of_string_exn "(age>=_)" in
  match Symbolic.compile schema ~left ~right with
  | Some cond ->
      check_bool "30 >= 20" true
        (Symbolic.eval schema cond ~left:[| "30" |] ~right:[| "20" |]);
      check_bool "10 >= 20 fails" false
        (Symbolic.eval schema cond ~left:[| "10" |] ~right:[| "20" |])
  | None -> Alcotest.fail "expected compilation"

let test_cross_template_prefix () =
  let left = Template.of_string_exn "(serialnumber=_)" in
  let right = Template.of_string_exn "(serialnumber=_*)" in
  match Symbolic.compile schema ~left ~right with
  | Some cond ->
      check_bool "prefix hit" true
        (Symbolic.eval schema cond ~left:[| "2406" |] ~right:[| "24" |]);
      check_bool "prefix miss" false
        (Symbolic.eval schema cond ~left:[| "2506" |] ~right:[| "24" |])
  | None -> Alcotest.fail "expected compilation"

let test_template_pruning () =
  (* The paper: a query of template (&(sn=_)(ou=_)) can not answer (sn=_). *)
  let left = Template.of_string_exn "(sn=_)" in
  let right = Template.of_string_exn "(&(sn=_)(ou=_))" in
  (match Symbolic.compile schema ~left ~right with
  | Some Symbolic.Never -> ()
  | Some other -> Alcotest.failf "expected Never, got %s" (Symbolic.to_string other)
  | None -> Alcotest.fail "expected compilation");
  (* The other direction is conditional: equal sn values.  Hole values
     are extracted with [match_filter] so the (normalization-defined)
     hole order is respected. *)
  let left_values =
    Option.get (Template.match_filter schema right (f "(&(sn=doe)(ou=x))"))
  in
  let right_values = Option.get (Template.match_filter schema left (f "(sn=doe)")) in
  match Symbolic.compile schema ~left:right ~right:left with
  | Some (Symbolic.Cnf _ as cond) ->
      check_bool "conditional containment holds" true
        (Symbolic.eval schema cond ~left:left_values ~right:right_values);
      check_bool "conditional containment fails on mismatch" false
        (Symbolic.eval schema cond ~left:left_values ~right:[| "smith" |])
  | Some other -> Alcotest.failf "expected Cnf, got %s" (Symbolic.to_string other)
  | None -> Alcotest.fail "expected compilation"

(* --- Query containment (QC) ----------------------------------------- *)

let q ?(scope = Scope.Sub) ?(attrs = Query.All) base filter =
  Query.make ~scope ~attrs ~base:(Dn.of_string_exn base) (f filter)

let qc query stored = Query_containment.contained schema ~query ~stored

let test_qc_regions () =
  check_bool "same base sub" true (qc (q "o=xyz" "(cn=a)") (q "o=xyz" "(cn=*)"));
  check_bool "deeper base" true (qc (q "ou=r,o=xyz" "(cn=a)") (q "o=xyz" "(cn=*)"));
  check_bool "shallower base fails" false (qc (q "o=xyz" "(cn=a)") (q "ou=r,o=xyz" "(cn=*)"));
  check_bool "sibling fails" false (qc (q "c=us,o=xyz" "(cn=a)") (q "c=in,o=xyz" "(cn=*)"));
  check_bool "scope: base in sub" true
    (qc (q ~scope:Scope.Base "ou=r,o=xyz" "(cn=a)") (q "o=xyz" "(cn=*)"));
  check_bool "scope: sub not in one" false
    (qc (q ~scope:Scope.Sub "o=xyz" "(cn=a)") (q ~scope:Scope.One "o=xyz" "(cn=*)"));
  check_bool "scope: one in sub" true
    (qc (q ~scope:Scope.One "o=xyz" "(cn=a)") (q ~scope:Scope.Sub "o=xyz" "(cn=*)"));
  check_bool "scope: base child of one-level" true
    (qc (q ~scope:Scope.Base "ou=r,o=xyz" "(cn=a)") (q ~scope:Scope.One "o=xyz" "(cn=*)"))

let test_qc_attrs () =
  let sel l = Query.Select l in
  check_bool "subset attrs" true
    (qc (q ~attrs:(sel [ "cn" ]) "o=xyz" "(cn=a)") (q ~attrs:(sel [ "cn"; "sn" ]) "o=xyz" "(cn=*)"));
  check_bool "superset attrs fails" false
    (qc (q ~attrs:(sel [ "cn"; "mail" ]) "o=xyz" "(cn=a)") (q ~attrs:(sel [ "cn" ]) "o=xyz" "(cn=*)"));
  check_bool "all contains select" true
    (qc (q ~attrs:(sel [ "cn" ]) "o=xyz" "(cn=a)") (q ~attrs:Query.All "o=xyz" "(cn=*)"));
  check_bool "select does not contain all" false
    (qc (q ~attrs:Query.All "o=xyz" "(cn=a)") (q ~attrs:(sel [ "cn" ]) "o=xyz" "(cn=*)"))

(* --- Containment index ----------------------------------------------- *)

let test_index_basic () =
  let idx = Containment_index.create schema in
  Containment_index.add idx (q "o=xyz" "(serialnumber=24*)") "block24";
  Containment_index.add idx (q "o=xyz" "(&(dept=2406)(div=sw))") "d2406";
  Alcotest.(check int) "length" 2 (Containment_index.length idx);
  (match Containment_index.find_container idx (q "o=xyz" "(serialnumber=2417)") with
  | Some (_, p) -> Alcotest.(check string) "payload" "block24" p
  | None -> Alcotest.fail "expected hit");
  check_bool "miss" true
    (Containment_index.find_container idx (q "o=xyz" "(serialnumber=2517)") = None);
  (match Containment_index.find_container idx (q "o=xyz" "(&(dept=2406)(div=sw))") with
  | Some (_, p) -> Alcotest.(check string) "same-template hit" "d2406" p
  | None -> Alcotest.fail "expected same-template hit");
  check_bool "region respected" true
    (Containment_index.find_container idx (q "o=abc" "(serialnumber=2417)") = None)

let test_index_remove_replace () =
  let idx = Containment_index.create schema in
  let query = q "o=xyz" "(serialnumber=24*)" in
  Containment_index.add idx query 1;
  Containment_index.add idx query 2;
  Alcotest.(check int) "replace keeps one" 1 (Containment_index.length idx);
  (match Containment_index.find_container idx (q "o=xyz" "(serialnumber=2400)") with
  | Some (_, p) -> Alcotest.(check int) "replaced payload" 2 p
  | None -> Alcotest.fail "expected hit");
  Containment_index.remove idx query;
  Alcotest.(check int) "removed" 0 (Containment_index.length idx)

let test_index_comparisons_counted () =
  (* Range filters compile to Empty_range conditions on both hole
     sides, which have no keyed pruning plan: a miss still scans the
     bucket and the counter sees every stored check. *)
  let idx = Containment_index.create schema in
  for i = 0 to 9 do
    Containment_index.add idx (q "o=xyz" (Printf.sprintf "(dept>=%d)" (10 * i))) i
  done;
  Containment_index.reset_comparisons idx;
  (* "!" sorts below every stored bound, so no stored query contains
     the probe and the scan visits the whole bucket. *)
  ignore (Containment_index.find_container idx (q "o=xyz" "(dept>=!)"));
  check_bool "comparisons counted" true (Containment_index.comparisons idx >= 10)

let test_index_pruning () =
  (* Same-template equality misses are answered from the value columns
     without touching any stored query... *)
  let idx = Containment_index.create schema in
  for i = 0 to 99 do
    Containment_index.add idx (q "o=xyz" (Printf.sprintf "(dept=%d)" i)) i
  done;
  Containment_index.reset_comparisons idx;
  check_bool "miss" true (Containment_index.find_container idx (q "o=xyz" "(dept=999)") = None);
  Alcotest.(check int) "eq miss checks nothing" 0 (Containment_index.comparisons idx);
  (* ...and a hit checks only the column's worth of candidates. *)
  Containment_index.reset_comparisons idx;
  (match Containment_index.find_container idx (q "o=xyz" "(dept=42)") with
  | Some (_, p) -> Alcotest.(check int) "hit payload" 42 p
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "eq hit checks one candidate" 1 (Containment_index.comparisons idx);
  (* Pruning must survive removals and re-adds. *)
  Containment_index.remove idx (q "o=xyz" "(dept=42)");
  check_bool "removed not found" true
    (Containment_index.find_container idx (q "o=xyz" "(dept=42)") = None);
  Containment_index.add idx (q "o=xyz" "(dept=42)") 4242;
  (match Containment_index.find_container idx (q "o=xyz" "(dept=42)") with
  | Some (_, p) -> Alcotest.(check int) "re-added payload" 4242 p
  | None -> Alcotest.fail "expected hit after re-add")

let test_index_integer_spellings () =
  (* The column key must agree with Value.equal: "07" and "7" are the
     same Integer value even though they normalize differently. *)
  let idx = Containment_index.create schema in
  Containment_index.add idx (q "o=xyz" "(age=7)") "seven";
  match Containment_index.find_container idx (q "o=xyz" "(age=07)") with
  | Some (_, p) -> Alcotest.(check string) "zero-padded spelling" "seven" p
  | None -> Alcotest.fail "expected (age=07) to be contained in (age=7)"

(* --- Template registry ------------------------------------------------ *)

let test_registry () =
  let r = Template_registry.create schema in
  (match
     Template_registry.declare_strings r
       [ "(serialnumber=_)"; "(&(departmentnumber=_)(divisionnumber=_))" ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "declared" 2 (List.length (Template_registry.templates r));
  (* Duplicate declarations are ignored. *)
  Template_registry.declare r (Template.of_string_exn "(serialnumber=_)");
  Alcotest.(check int) "no dup" 2 (List.length (Template_registry.templates r));
  check_bool "classified" true
    (Template_registry.classify r (q "o=xyz" "(serialnumber=0456)") <> None);
  check_bool "admitted" true
    (Template_registry.admit r (q "o=xyz" "(&(departmentnumber=2406)(divisionnumber=24))"));
  check_bool "rejected" false (Template_registry.admit r (q "o=xyz" "(sn=doe)"));
  Alcotest.(check int) "unclassified" 1 (Template_registry.unclassified r);
  let stats =
    Option.get (Template_registry.stats_of r (Template.of_string_exn "(serialnumber=_)"))
  in
  Alcotest.(check int) "observed" 1 stats.Template_registry.observed;
  check_bool "bad declaration fails" true
    (Result.is_error (Template_registry.declare_strings r [ "(((" ]))

(* --- Oracle property: containment soundness --------------------------
   Verify [contained f1 f2 = true] implies no entry (from an exhaustive
   small domain) satisfies f1 but not f2. *)

let small_domain_entries =
  (* Entries over attrs {age (single), cn (multi)} with small values. *)
  let ages = [ None; Some "1"; Some "2"; Some "3" ] in
  let cn_sets = [ []; [ "a" ]; [ "b" ]; [ "a"; "b" ]; [ "ab" ] ] in
  List.concat_map
    (fun age ->
      List.map
        (fun cns ->
          let attrs =
            [ ("objectclass", [ "person" ]) ]
            @ (match age with Some a -> [ ("age", [ a ]) ] | None -> [])
            @ match cns with [] -> [] | _ -> [ ("cn", cns) ]
          in
          Entry.make (Dn.of_string_exn "cn=test,o=xyz") attrs)
        cn_sets)
    ages

let small_filter_gen =
  let open QCheck.Gen in
  let pred =
    oneof
      [
        map2 (fun a v -> Filter.Equality (a, v))
          (oneofl [ "age"; "cn" ]) (oneofl [ "1"; "2"; "3"; "a"; "b"; "ab" ]);
        map (fun v -> Filter.Greater_eq ("age", v)) (oneofl [ "1"; "2"; "3" ]);
        map (fun v -> Filter.Less_eq ("age", v)) (oneofl [ "1"; "2"; "3" ]);
        map (fun a -> Filter.Present a) (oneofl [ "age"; "cn" ]);
        map
          (fun v -> Filter.Substrings ("cn", { Filter.initial = Some v; any = []; final = None }))
          (oneofl [ "a"; "b" ]);
      ]
  in
  let rec tree depth =
    if depth = 0 then map (fun p -> Filter.Pred p) pred
    else
      frequency
        [
          (3, map (fun p -> Filter.Pred p) pred);
          (1, map (fun g -> Filter.Not g) (tree (depth - 1)));
          (2, map (fun gs -> Filter.And gs) (list_size (2 -- 3) (tree (depth - 1))));
          (2, map (fun gs -> Filter.Or gs) (list_size (2 -- 3) (tree (depth - 1))));
        ]
  in
  tree 2

let prop_containment_sound =
  QCheck.Test.make ~name:"containment: sound vs small-domain oracle" ~count:1000
    (QCheck.make
       ~print:(fun (a, b) -> Filter.to_string a ^ " in " ^ Filter.to_string b)
       (QCheck.Gen.pair small_filter_gen small_filter_gen))
    (fun (f1, f2) ->
      if Filter_containment.contained schema f1 f2 then
        List.for_all
          (fun e -> (not (Filter.matches schema f1 e)) || Filter.matches schema f2 e)
          small_domain_entries
      else true)

let prop_same_shape_agrees =
  QCheck.Test.make ~name:"containment: same-shape path sound vs oracle" ~count:500
    (QCheck.make
       ~print:(fun (a, b) -> Filter.to_string a ^ " in " ^ Filter.to_string b)
       (QCheck.Gen.pair small_filter_gen small_filter_gen))
    (fun (f1, f2) ->
      match Filter_containment.same_shape_contained schema f1 f2 with
      | Some true ->
          List.for_all
            (fun e -> (not (Filter.matches schema f1 e)) || Filter.matches schema f2 e)
            small_domain_entries
      | Some false | None -> true)

let test_numeric_prefix_ranges () =
  (* A substring prefix does not bound Integer-syntax values: "-2*"
     matches -25 < -9, so treating age=-2* as inside age>=-9 would let
     a replica answer the range query from content missing -25. *)
  check_bool "negative prefix not in ge" false (contained "(age=-2*)" "(age>=-9)");
  check_bool "prefix not in le (10 matches 1*)" false (contained "(age=1*)" "(age<=2)");
  check_bool "prefix not in ge (positive)" false (contained "(age=1*)" "(age>=1)");
  (* Lexically ordered syntaxes keep the prefix-window reasoning. *)
  check_bool "lexical prefix in ge" true (contained "(sn=ab*)" "(sn>=ab)");
  check_bool "lexical prefix in le" true (contained "(sn=ab*)" "(sn<=ac)");
  check_bool "lexical prefix not in smaller le" false (contained "(sn=ab*)" "(sn<=ab)")

let suite =
  [
    Alcotest.test_case "reflexive" `Quick test_reflexive;
    Alcotest.test_case "numeric prefix ranges" `Quick test_numeric_prefix_ranges;
    Alcotest.test_case "equality cases" `Quick test_equality_cases;
    Alcotest.test_case "range cases" `Quick test_range_cases;
    Alcotest.test_case "substring cases" `Quick test_substring_cases;
    Alcotest.test_case "boolean cases" `Quick test_boolean_cases;
    Alcotest.test_case "negation cases" `Quick test_negation_cases;
    Alcotest.test_case "unsatisfiable left" `Quick test_unsatisfiable_left;
    Alcotest.test_case "template extraction" `Quick test_template_extraction;
    Alcotest.test_case "template declared" `Quick test_template_declared;
    Alcotest.test_case "template instantiate" `Quick test_template_instantiate;
    Alcotest.test_case "cross-template compile" `Quick test_cross_template_compile;
    Alcotest.test_case "cross-template prefix" `Quick test_cross_template_prefix;
    Alcotest.test_case "template pruning (Never)" `Quick test_template_pruning;
    Alcotest.test_case "QC regions" `Quick test_qc_regions;
    Alcotest.test_case "QC attributes" `Quick test_qc_attrs;
    Alcotest.test_case "index basic" `Quick test_index_basic;
    Alcotest.test_case "index remove/replace" `Quick test_index_remove_replace;
    Alcotest.test_case "index comparisons" `Quick test_index_comparisons_counted;
    Alcotest.test_case "index pruning" `Quick test_index_pruning;
    Alcotest.test_case "index integer spellings" `Quick test_index_integer_spellings;
    Alcotest.test_case "template registry" `Quick test_registry;
    QCheck_alcotest.to_alcotest prop_containment_sound;
    QCheck_alcotest.to_alcotest prop_same_shape_agrees;
  ]
