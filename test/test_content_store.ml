(* Tests for the DN-keyed content store: slot/tombstone accounting,
   change-spine enumeration (dedup, ordering, trim-forced rescan), CSN
   stamping, and a randomized catch-up property: an old snapshot plus
   the DNs of [changes_since] always reconciles to the current
   content, or is told to rescan — never served a silent gap. *)
open Ldap

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn

let entry name v =
  Entry.make
    (dn (Printf.sprintf "cn=%s,o=xyz" name))
    [ ("objectclass", [ "person" ]); ("cn", [ name ]); ("sn", [ v ]) ]

let dns_of = List.map (fun d -> Dn.canonical d)

let test_upsert_find_remove () =
  let s = Content_store.create () in
  check_int "empty" 0 (Content_store.size s);
  Content_store.upsert s (entry "a" "1");
  Content_store.upsert s (entry "b" "1");
  check_int "two live" 2 (Content_store.size s);
  check_bool "mem" true (Content_store.mem s (dn "cn=a,o=xyz"));
  (* Replacement keeps one slot and returns the latest image. *)
  Content_store.upsert s (entry "a" "2");
  check_int "still two" 2 (Content_store.size s);
  check_int "two slots" 2 (Content_store.interned s);
  (match Content_store.find s (dn "cn=a,o=xyz") with
  | Some e -> check_bool "latest image" true (Entry.equal e (entry "a" "2"))
  | None -> Alcotest.fail "lost entry a");
  (* Removal tombstones the slot: size drops, interned does not. *)
  Content_store.remove s (dn "cn=a,o=xyz");
  check_int "one live" 1 (Content_store.size s);
  check_int "slot survives" 2 (Content_store.interned s);
  check_bool "gone" true (Content_store.find s (dn "cn=a,o=xyz") = None);
  (* Removing an absent DN is a no-op and records no event. *)
  let r = Content_store.rev s in
  Content_store.remove s (dn "cn=zz,o=xyz");
  check_int "no event for absent dn" r (Content_store.rev s);
  (* Revival reuses the DN; the store holds it once. *)
  Content_store.upsert s (entry "a" "3");
  check_int "revived" 2 (Content_store.size s);
  check_int "revived once" 2
    (List.length
       (List.filter
          (fun e -> Dn.equal (Entry.dn e) (dn "cn=a,o=xyz") || Dn.equal (Entry.dn e) (dn "cn=b,o=xyz"))
          (Content_store.to_list s)))

let test_iteration_order () =
  let s = Content_store.create () in
  List.iter (fun n -> Content_store.upsert s (entry n "1")) [ "c"; "a"; "b" ];
  Content_store.remove s (dn "cn=a,o=xyz");
  let names e = List.hd (Entry.get e "cn") in
  check_bool "seq skips tombstones, keeps insertion order" true
    (List.map names (List.of_seq (Content_store.to_seq s)) = [ "c"; "b" ]);
  check_bool "fold agrees with seq" true
    (Content_store.fold s ~init:[] ~f:(fun acc e -> names e :: acc)
    = [ "b"; "c" ])

let test_changes_since () =
  let s = Content_store.create () in
  Content_store.upsert s (entry "a" "1");
  Content_store.upsert s (entry "b" "1");
  let r = Content_store.rev s in
  check_bool "nothing changed yet" true (Content_store.changes_since s r = Some []);
  (* Two touches of one DN dedup to a single element, oldest-first by
     first occurrence. *)
  Content_store.upsert s (entry "c" "1");
  Content_store.upsert s (entry "a" "2");
  Content_store.upsert s (entry "c" "2");
  (match Content_store.changes_since s r with
  | Some l ->
      check_bool "deduped oldest-first" true
        (dns_of l = [ "cn=c,o=xyz"; "cn=a,o=xyz" ])
  | None -> Alcotest.fail "spine should cover r");
  (* Deletes are events too. *)
  Content_store.remove s (dn "cn=b,o=xyz");
  (match Content_store.changes_since s r with
  | Some l -> check_int "delete recorded" 3 (List.length l)
  | None -> Alcotest.fail "spine should cover r");
  check_bool "from the head: empty" true
    (Content_store.changes_since s (Content_store.rev s) = Some [])

let test_trim_and_rescan () =
  let s = Content_store.create ~spine_cap:8 () in
  for i = 1 to 40 do
    Content_store.upsert s (entry (Printf.sprintf "e%d" i) "1")
  done;
  check_int "rev counts every event" 40 (Content_store.rev s);
  check_bool "spine bounded by 2*cap" true (Content_store.spine_length s <= 16);
  check_bool "floor advanced" true (Content_store.floor s > 0);
  check_bool "pre-floor cursor must rescan" true
    (Content_store.changes_since s 0 = None);
  (match Content_store.changes_since s (Content_store.floor s) with
  | Some l ->
      check_int "covered tail enumerates" (40 - Content_store.floor s)
        (List.length l)
  | None -> Alcotest.fail "floor itself is covered");
  Content_store.trim_spine s ~keep:3;
  check_int "explicit trim" 3 (Content_store.spine_length s);
  check_bool "older cursor now rescans" true
    (Content_store.changes_since s (40 - 4) = None)

let test_csn_stamps () =
  let s = Content_store.create () in
  check_bool "empty range" true (Content_store.spine_csn_range s = None);
  Content_store.upsert s ~csn:(Csn.of_int 5) (entry "a" "1");
  Content_store.upsert s ~csn:(Csn.of_int 9) (entry "b" "1");
  Content_store.remove s ~csn:(Csn.of_int 12) (dn "cn=a,o=xyz");
  (match Content_store.spine_csn_range s with
  | Some (lo, hi) ->
      check_int "oldest stamp" 5 (Csn.to_int lo);
      check_int "newest stamp" 12 (Csn.to_int hi)
  | None -> Alcotest.fail "stamped spine has a range");
  check_bool "footprint positive" true (Content_store.approx_bytes s > 0)

(* --- Randomized catch-up property -------------------------------------

   Model the store as a plain (name -> value) map.  At a random point a
   cursor snapshots the map and records the revision; after more random
   ops it catches up: [changes_since] either lists the DNs to re-read
   (patching the snapshot from the live store must reproduce the
   current model exactly) or demands a rescan — and it may only demand
   a rescan when the spine really was trimmed past the cursor. *)

type cs_op = Cs_put of int * int | Cs_del of int

let cs_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun i v -> Cs_put (i, v)) (0 -- 12) (0 -- 5));
        (2, map (fun i -> Cs_del i) (0 -- 12));
      ])

let cs_print = function
  | Cs_put (i, v) -> Printf.sprintf "put(%d,%d)" i v
  | Cs_del i -> Printf.sprintf "del(%d)" i

let name_of i = Printf.sprintf "e%d" i
let dn_of i = dn (Printf.sprintf "cn=%s,o=xyz" (name_of i))
let key_of i = Dn.canonical (dn_of i)

let run_catch_up (cap, before, after) =
  let s = Content_store.create ~spine_cap:cap () in
  let model = Hashtbl.create 16 in
  let apply op =
    match op with
    | Cs_put (i, v) ->
        Hashtbl.replace model (key_of i) v;
        Content_store.upsert s (entry (name_of i) (string_of_int v))
    | Cs_del i ->
        Hashtbl.remove model (key_of i);
        Content_store.remove s (dn_of i)
  in
  List.iter apply before;
  let snapshot = Hashtbl.copy model in
  let cursor = Content_store.rev s in
  List.iter apply after;
  (match Content_store.changes_since s cursor with
  | None ->
      if Content_store.floor s <= cursor then
        QCheck.Test.fail_reportf
          "rescan demanded but spine covers the cursor (floor %d, cursor %d)"
          (Content_store.floor s) cursor
  | Some changed ->
      List.iter
        (fun d ->
          let key = Dn.canonical d in
          match Content_store.find s d with
          | Some e -> Hashtbl.replace snapshot key (int_of_string (List.hd (Entry.get e "sn")))
          | None -> Hashtbl.remove snapshot key)
        changed;
      let dump h =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])
      in
      if dump snapshot <> dump model then
        QCheck.Test.fail_reportf "catch-up diverged from model");
  (* The store itself always matches the model. *)
  Content_store.size s = Hashtbl.length model

let catch_up_test =
  QCheck.Test.make ~count:200 ~name:"content-store: snapshot + changes_since = current"
    (QCheck.make
       ~print:(fun (cap, before, after) ->
         Printf.sprintf "cap=%d before=[%s] after=[%s]" cap
           (String.concat " " (List.map cs_print before))
           (String.concat " " (List.map cs_print after)))
       QCheck.Gen.(
         triple (2 -- 20) (list_size (0 -- 30) cs_gen) (list_size (0 -- 30) cs_gen)))
    run_catch_up

let suite =
  [
    Alcotest.test_case "upsert/find/remove/revive" `Quick test_upsert_find_remove;
    Alcotest.test_case "iteration order" `Quick test_iteration_order;
    Alcotest.test_case "changes_since dedups in order" `Quick test_changes_since;
    Alcotest.test_case "trim forces rescan" `Quick test_trim_and_rescan;
    Alcotest.test_case "csn stamps" `Quick test_csn_stamps;
    QCheck_alcotest.to_alcotest catch_up_test;
  ]
