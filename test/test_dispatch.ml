(* Tests for predicate-indexed update dispatch: anchor unit tests for
   the index itself, and a randomized equivalence property checking
   that routed dispatch is observably identical to classifying every
   update against every session. *)
open Ldap
open Ldap_containment
open Ldap_resync

let schema = Schema.default
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let dn = Dn.of_string_exn
let f = Filter.of_string_exn

let entry name attrs =
  Entry.make (dn (Printf.sprintf "cn=%s,o=xyz" name)) (("cn", [ name ]) :: attrs)

(* Candidate ids for a single-entry "add" probe. *)
let hits idx e =
  let c = Predicate_index.affected idx ~before:None ~after:(Some e) in
  let ids = ref [] in
  Predicate_index.iter (fun id -> ids := id :: !ids) c;
  List.sort Int.compare !ids

let test_eq_anchor () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(sn=ada)");
  Predicate_index.add idx 2 (f "(sn=bob)");
  Alcotest.(check (list int)) "sn=ada routes to 1" [ 1 ]
    (hits idx (entry "x" [ ("sn", [ "Ada" ]) ]));
  Alcotest.(check (list int)) "sn=carol routes nowhere" []
    (hits idx (entry "x" [ ("sn", [ "carol" ]) ]));
  Alcotest.(check (list int)) "multi-valued hits both" [ 1; 2 ]
    (hits idx (entry "x" [ ("sn", [ "ada"; "bob" ]) ]))

let test_integer_spelling_anchor () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(age=07)");
  Alcotest.(check (list int)) "(age=07) hit by age 7" [ 1 ]
    (hits idx (entry "x" [ ("age", [ "7" ]) ]))

let test_prefix_anchor () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(sn=smi*)");
  Predicate_index.add idx 2 (f "(sn=abcdefg*)");  (* longer than the anchor width *)
  Alcotest.(check (list int)) "smith hits smi*" [ 1 ]
    (hits idx (entry "x" [ ("sn", [ "Smith" ]) ]));
  Alcotest.(check (list int)) "jones hits nothing" []
    (hits idx (entry "x" [ ("sn", [ "jones" ]) ]));
  Alcotest.(check (list int)) "truncated prefix still routes" [ 2 ]
    (hits idx (entry "x" [ ("sn", [ "abcdefgh" ]) ]));
  (* Truncation widens: a value sharing only the truncated prefix is a
     (sound) false candidate. *)
  Alcotest.(check (list int)) "truncation over-approximates" [ 2 ]
    (hits idx (entry "x" [ ("sn", [ "abcdzzz" ]) ]))

let test_presence_and_bare_substring () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(mail=*)");
  Predicate_index.add idx 2 (f "(mail=*corp*)");  (* no initial: attr anchor *)
  Alcotest.(check (list int)) "mail present hits both" [ 1; 2 ]
    (hits idx (entry "x" [ ("mail", [ "a@corp" ]) ]));
  Alcotest.(check (list int)) "no mail hits nothing" []
    (hits idx (entry "x" [ ("sn", [ "ada" ]) ]))

let test_range_anchors () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(age>=30)");
  Predicate_index.add idx 2 (f "(age<=20)");
  Alcotest.(check (list int)) "35 is >=30" [ 1 ] (hits idx (entry "x" [ ("age", [ "35" ]) ]));
  Alcotest.(check (list int)) "10 is <=20" [ 2 ] (hits idx (entry "x" [ ("age", [ "10" ]) ]));
  Alcotest.(check (list int)) "25 hits neither" []
    (hits idx (entry "x" [ ("age", [ "25" ]) ]));
  Alcotest.(check (list int)) "30 is >=30 (boundary)" [ 1 ]
    (hits idx (entry "x" [ ("age", [ "30" ]) ]))

let test_boolean_anchors () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(&(sn=ada)(departmentnumber=7))");
  Predicate_index.add idx 2 (f "(|(sn=bob)(sn=carol))");
  check_int "no fallback" 0 (Predicate_index.fallback_count idx);
  Alcotest.(check (list int)) "AND anchored on a conjunct" [ 1 ]
    (hits idx (entry "x" [ ("sn", [ "ada" ]); ("departmentnumber", [ "7" ]) ]));
  Alcotest.(check (list int)) "OR anchored on every branch" [ 2 ]
    (hits idx (entry "x" [ ("sn", [ "carol" ]) ]))

let test_fallback () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(!(sn=ada))");
  Predicate_index.add idx 2 (f "(|(sn=ada)(!(mail=a@x)))");  (* one bad branch poisons OR *)
  Predicate_index.add idx 3 (f "(sn=ada)");
  check_int "two fallbacks" 2 (Predicate_index.fallback_count idx);
  check_int "three registered" 3 (Predicate_index.length idx);
  (* Fallback subscribers are candidates for every update, even one
     touching none of their attributes. *)
  Alcotest.(check (list int)) "fallback always candidates" [ 1; 2 ]
    (hits idx (entry "x" [ ("l", [ "basel" ]) ]))

let test_remove_and_replace () =
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(sn=ada)");
  Predicate_index.add idx 2 (f "(!(sn=ada))");
  Predicate_index.remove idx 1;
  Predicate_index.remove idx 2;
  check_int "empty" 0 (Predicate_index.length idx);
  check_int "fallback cleared" 0 (Predicate_index.fallback_count idx);
  Alcotest.(check (list int)) "nothing routed" []
    (hits idx (entry "x" [ ("sn", [ "ada" ]) ]));
  (* Re-adding an id replaces its registration. *)
  Predicate_index.add idx 7 (f "(sn=ada)");
  Predicate_index.add idx 7 (f "(sn=bob)");
  check_int "one registration" 1 (Predicate_index.length idx);
  Alcotest.(check (list int)) "old anchor gone" []
    (hits idx (entry "x" [ ("sn", [ "ada" ]) ]));
  Alcotest.(check (list int)) "new anchor live" [ 7 ]
    (hits idx (entry "x" [ ("sn", [ "bob" ]) ]))

let test_before_and_after_probed () =
  (* A modify that moves an entry out of a filter's content only shows
     the filter's value in the before-image; routing must probe both
     sides. *)
  let idx = Predicate_index.create schema in
  Predicate_index.add idx 1 (f "(departmentnumber=7)");
  let was = entry "x" [ ("departmentnumber", [ "7" ]) ] in
  let now = entry "x" [ ("departmentnumber", [ "9" ]) ] in
  let c = Predicate_index.affected idx ~before:(Some was) ~after:(Some now) in
  check_bool "leaving entry still routed" true (Predicate_index.mem c 1);
  let c = Predicate_index.affected idx ~before:(Some now) ~after:(Some was) in
  check_bool "entering entry routed" true (Predicate_index.mem c 1)

(* --- Equivalence property ---------------------------------------------
   Twin backends fed the same update stream, one master with routed
   dispatch and one naive.  Every observable — poll replies (kind,
   actions, cookie), pushed persist actions, session counts — must be
   identical for every strategy. *)

let org = Entry.make (dn "o=xyz") [ ("objectclass", [ "organization" ]); ("o", [ "xyz" ]) ]

let person i ~dept ~mail =
  let base =
    [
      ("objectclass", [ "inetOrgPerson" ]);
      ("cn", [ Printf.sprintf "p%d" i ]);
      ("sn", [ Printf.sprintf "p%d" i ]);
      ("departmentNumber", [ string_of_int dept ]);
    ]
  in
  Entry.make
    (dn (Printf.sprintf "cn=p%d,o=xyz" i))
    (if mail then ("mail", [ Printf.sprintf "p%d@xyz" i ]) :: base else base)

let make_backend () =
  let b = Backend.create ~indexed:[ "departmentnumber" ] schema in
  (match Backend.add_context b org with Ok () -> () | Error e -> failwith e);
  b

(* Session filters: anchorable shapes of every kind plus fallback. *)
let session_filters =
  [
    "(departmentnumber=7)";
    "(departmentnumber=8)";
    "(sn=p1*)";
    "(|(departmentnumber=7)(sn=p2*))";
    "(&(objectclass=inetorgperson)(departmentnumber>=8))";
    "(mail=*)";
    "(!(departmentnumber=7))";
  ]

type sim_op =
  | Op_add of int * int * bool  (* name i, dept d, with mail *)
  | Op_delete of int
  | Op_move_dept of int * int
  | Op_set_mail of int
  | Op_rename of int * int
  | Op_poll
  | Op_expire

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map3 (fun i d m -> Op_add (i, d, m)) (0 -- 20) (7 -- 9) bool);
        (2, map (fun i -> Op_delete i) (0 -- 20));
        (3, map2 (fun i d -> Op_move_dept (i, d)) (0 -- 20) (7 -- 9));
        (2, map (fun i -> Op_set_mail i) (0 -- 20));
        (1, map2 (fun i j -> Op_rename (i, j)) (0 -- 20) (21 -- 40));
        (2, return Op_poll);
        (1, return Op_expire);
      ])

let op_print = function
  | Op_add (i, d, m) -> Printf.sprintf "add(%d,%d,%b)" i d m
  | Op_delete i -> Printf.sprintf "delete(%d)" i
  | Op_move_dept (i, d) -> Printf.sprintf "move(%d,%d)" i d
  | Op_set_mail i -> Printf.sprintf "mail(%d)" i
  | Op_rename (i, j) -> Printf.sprintf "rename(%d,%d)" i j
  | Op_poll -> "poll"
  | Op_expire -> "expire"

let action_equal a b =
  match (a, b) with
  | Action.Add e1, Action.Add e2 | Action.Modify e1, Action.Modify e2 -> Entry.equal e1 e2
  | Action.Delete d1, Action.Delete d2 | Action.Retain d1, Action.Retain d2 ->
      Dn.equal d1 d2
  | _ -> false

let reply_equal (a : Protocol.reply) (b : Protocol.reply) =
  a.Protocol.kind = b.Protocol.kind
  && a.Protocol.cookie = b.Protocol.cookie
  && List.length a.Protocol.actions = List.length b.Protocol.actions
  && List.for_all2 action_equal a.Protocol.actions b.Protocol.actions

(* One replica endpoint driven against both masters in lockstep. *)
type twin_session = {
  query : Query.t;
  persist : bool;
  mutable cookies : string option * string option;  (* routed, naive *)
  pushed_r : Action.t list ref;  (* newest first *)
  pushed_n : Action.t list ref;
}

let sync_session master session ~cookie ~pushed =
  let mode = if session.persist then Protocol.Persist else Protocol.Poll in
  let push =
    if session.persist then
      Some (Protocol.push_of_fn (fun a -> pushed := a :: !pushed))
    else None
  in
  match Master.handle master ?push { Protocol.mode; cookie } session.query with
  | Ok reply -> reply
  | Error e -> failwith e

let equivalent_run strategy ops =
  let br = make_backend () and bn = make_backend () in
  let mr = Master.create ~strategy ~dispatch:Master.Routed br in
  let mn = Master.create ~strategy ~dispatch:Master.Naive bn in
  let apply op =
    ignore (Backend.apply br op);
    ignore (Backend.apply bn op)
  in
  (* Seed some content before the sessions exist. *)
  List.iter (fun i -> apply (Update.add (person i ~dept:7 ~mail:(i mod 2 = 0)))) [ 0; 1; 2 ];
  let sessions =
    List.concat_map
      (fun fs ->
        let query = Query.make ~base:(dn "o=xyz") (f fs) in
        List.map
          (fun persist ->
            {
              query;
              persist;
              cookies = (None, None);
              pushed_r = ref [];
              pushed_n = ref [];
            })
          [ false; true ])
      session_filters
  in
  let sync_all () =
    List.iter
      (fun s ->
        let cr, cn = s.cookies in
        let rr = sync_session mr s ~cookie:cr ~pushed:s.pushed_r in
        let rn = sync_session mn s ~cookie:cn ~pushed:s.pushed_n in
        if not (reply_equal rr rn) then
          QCheck.Test.fail_reportf "divergent reply for %s (%s)"
            (Filter.to_string s.query.Query.filter)
            (if s.persist then "persist" else "poll");
        s.cookies <- (rr.Protocol.cookie, rn.Protocol.cookie))
      sessions
  in
  sync_all ();
  let name i = Printf.sprintf "cn=p%d,o=xyz" i in
  List.iter
    (fun op ->
      match op with
      | Op_add (i, d, m) -> apply (Update.add (person i ~dept:d ~mail:m))
      | Op_delete i -> apply (Update.delete (dn (name i)))
      | Op_move_dept (i, d) ->
          apply
            (Update.modify (dn (name i))
               [ Update.replace_values "departmentNumber" [ string_of_int d ] ])
      | Op_set_mail i ->
          apply
            (Update.modify (dn (name i))
               [ Update.replace_values "mail" [ Printf.sprintf "p%d@new" i ] ])
      | Op_rename (i, j) -> (
          match Dn.rdn_of_string (Printf.sprintf "cn=p%d" j) with
          | Ok rdn -> apply (Update.modify_dn (dn (name i)) rdn)
          | Error _ -> ())
      | Op_poll -> sync_all ()
      | Op_expire ->
          Master.expire_sessions mr ~idle_limit:3;
          Master.expire_sessions mn ~idle_limit:3)
    ops;
  sync_all ();
  List.iter
    (fun s ->
      let pr = List.rev !(s.pushed_r) and pn = List.rev !(s.pushed_n) in
      if
        not (List.length pr = List.length pn && List.for_all2 action_equal pr pn)
      then
        QCheck.Test.fail_reportf "divergent push stream for %s (%d vs %d actions)"
          (Filter.to_string s.query.Query.filter)
          (List.length pr) (List.length pn))
    sessions;
  if Master.session_count mr <> Master.session_count mn then
    QCheck.Test.fail_reportf "divergent session counts";
  if Master.persistent_count mr <> Master.persistent_count mn then
    QCheck.Test.fail_reportf "divergent persistent counts";
  true

let equivalence_test strategy tag =
  QCheck.Test.make ~count:15 ~name:(Printf.sprintf "routed = naive (%s)" tag)
    (QCheck.make
       ~print:(fun ops -> String.concat " " (List.map op_print ops))
       QCheck.Gen.(list_size (80 -- 120) op_gen))
    (equivalent_run strategy)

let suite =
  [
    Alcotest.test_case "eq anchors" `Quick test_eq_anchor;
    Alcotest.test_case "integer spellings" `Quick test_integer_spelling_anchor;
    Alcotest.test_case "prefix anchors" `Quick test_prefix_anchor;
    Alcotest.test_case "presence anchors" `Quick test_presence_and_bare_substring;
    Alcotest.test_case "range anchors" `Quick test_range_anchors;
    Alcotest.test_case "boolean anchors" `Quick test_boolean_anchors;
    Alcotest.test_case "fallback set" `Quick test_fallback;
    Alcotest.test_case "remove/replace" `Quick test_remove_and_replace;
    Alcotest.test_case "before and after probed" `Quick test_before_and_after_probed;
    QCheck_alcotest.to_alcotest (equivalence_test Master.Session_history "session-history");
    QCheck_alcotest.to_alcotest (equivalence_test Master.Changelog "changelog");
    QCheck_alcotest.to_alcotest (equivalence_test Master.Tombstone "tombstone");
  ]
